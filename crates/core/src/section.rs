//! Composable guarded-GEMM sections — the reusable core of the §4.4
//! protection scheme.
//!
//! A *section* is a group of GEMMs whose checksums ride from operand to
//! product so that one **delayed detection point** covers every kernel in
//! the group. [`ProtectedAttention`](crate::attention::ProtectedAttention)
//! builds its three sections (`S_AS`, `S_CL`, `S_O`) on this API, and the
//! same building blocks protect the transformer FFN GEMMs end-to-end
//! (`attn_model`), in the spirit of extending attention ABFT across the
//! whole model (FT-Transformer, arXiv 2504.02211).
//!
//! The vocabulary:
//!
//! * [`GuardedSection`] — per-section context created with
//!   [`GuardedSection::begin`]. Every step method degrades to the plain
//!   unprotected computation when the section is inactive (frequency gate
//!   skipped this execution, or protection globally off), so callers write
//!   one pipeline and get bit-identical unprotected behaviour for free.
//! * encode steps — [`GuardedSection::encode_cols`],
//!   [`GuardedSection::encode_rows`], [`GuardedSection::operand`] wrap
//!   section inputs; [`GuardedSection::adopt_cols`] adapts a matrix
//!   *inherited* from an upstream section to this section's activity.
//! * GEMM steps — [`GuardedSection::gemm`] / [`GuardedSection::gemm_nt`]
//!   dispatch on the configured [`Strategy`] and let checksums ride through
//!   the product.
//! * fused entry steps — [`GuardedSection::gemm_encode_cols`] /
//!   [`GuardedSection::gemm_encode_rows`] /
//!   [`GuardedSection::gemm_adopt_cols`] enter the checksummed region *in*
//!   the GEMM: the operand's encoding accumulates inside the kernel's
//!   packing pass (paper §4.6), bit-identical to encode-then-multiply but
//!   without the standalone sweep. This is how `S_AS`, `S_CL`, `S_O` and
//!   `S_FFN` run on the hot path.
//! * exit-and-re-encode — [`GuardedSection::exit_cols`] leaves the
//!   checksummed region for a nonlinear step (softmax, GELU, masking),
//!   returning plain data whose re-encoding rides in the next fused GEMM;
//!   [`GuardedSection::exit_reencode_cols`] is the eager variant for
//!   callers that need the encoded matrix itself.
//! * detection — [`GuardedSection::detect`] runs the two-sided correction
//!   protocol and returns a [`Detection`] that the caller refines to exact
//!   bits ([`Detection::refine`]) and folds into the report
//!   ([`Detection::absorb`]).
//! * operand healing — [`GuardedSection::heal_operand_cols`] /
//!   [`GuardedSection::heal_operand_rows`] repair *source* matrices (`Q`,
//!   `K`, `V`) through their inherited checksums once a delayed detection
//!   fires, because the backward pass reuses them.
//! * [`ForwardCtx`] — the per-execution state (mask, section toggles, fault
//!   hook, report) threaded through sequential and batched forward paths.
//!
//! # Example: one section over a two-GEMM chain
//!
//! ```
//! use attn_tensor::rng::TensorRng;
//! use attnchecker::config::ProtectionConfig;
//! use attnchecker::report::{AbftReport, SectionId};
//! use attnchecker::section::{replay_nn, GuardedSection};
//!
//! let mut rng = TensorRng::seed_from(0);
//! let x = rng.normal_matrix(8, 16, 1.0);
//! let w1 = rng.normal_matrix(16, 16, 1.0);
//! let w2 = rng.normal_matrix(16, 4, 1.0);
//!
//! let mut report = AbftReport::default();
//! let sec =
//!     GuardedSection::begin(SectionId::Output, &ProtectionConfig::full(), true, &mut report);
//! let xc = sec.encode_cols(&x);                // checksums enter once…
//! let h = sec.gemm(&xc, &sec.operand(&w1));    // …ride through GEMM 1…
//! let mut y = sec.gemm(&h, &sec.operand(&w2)); // …and through GEMM 2.
//! y.set(3, 1, f32::INFINITY);                  // a soft error strikes
//!
//! // One delayed detection point covers the whole chain; exact replay
//! // restores the corrected element to its original bits.
//! let mut det = sec.detect(&mut y, usize::MAX);
//! if det.detections() > 0 {
//!     det.refine(&mut y, |r, c| replay_nn(h.logical_row(r), |k| w2[(k, c)]));
//! }
//! det.absorb(&mut report);
//! assert_eq!(report.correction_count(), 1);
//! assert!(y.logical().all_finite());
//! ```

use crate::attention::{FaultHook, FaultSite, SectionToggles};
use crate::checked::CheckedMatrix;
use crate::config::{AbftConfig, ProtectionConfig, Strategy};
use crate::detect::{
    correct_columns, correct_rows, full_correct, CorrectionSummary, ElementFix, PassOutcome,
};
use crate::report::{AbftReport, CorrectionRecord, SectionId};
use attn_tensor::Matrix;

/// Per-execution context threaded through a protected forward pass.
///
/// One `ForwardCtx` carries everything that varies per call — the additive
/// attention mask, the per-execution [`SectionToggles`] handed out by a
/// [`ProtectionPolicy`](crate::policy::ProtectionPolicy), the optional
/// fault-injection hook, and the report the run writes into — so layer code
/// threads a single `&mut ForwardCtx` instead of a parameter list. The
/// batched path builds one per item, which is what makes per-item hooks and
/// toggles possible.
pub struct ForwardCtx<'a, 'h> {
    /// Additive attention mask (`seq × seq`), e.g. causal or local-banded.
    pub mask: Option<&'a Matrix>,
    /// Per-execution section toggles (from the frequency gates).
    pub toggles: SectionToggles,
    /// Optional fault-injection hook (its own lifetime: `&mut dyn` is
    /// invariant, so tying it to the report's borrow would force callers to
    /// keep hook and report alive equally long).
    pub hook: Option<FaultHook<'h>>,
    /// Where ABFT activity is recorded.
    pub report: &'a mut AbftReport,
}

impl ForwardCtx<'_, '_> {
    /// Expose a GEMM output to the fault hook, if one is installed.
    pub fn fire(&mut self, site: FaultSite, m: &mut CheckedMatrix) {
        if let Some(h) = self.hook.as_mut() {
            h(site, m);
        }
    }
}

/// One protection section: a group of GEMMs covered by a single delayed
/// detection point, with checksums passed from operand to product.
///
/// Copyable section *context*, not a container: the step methods operate on
/// caller-owned [`CheckedMatrix`] values, so arbitrary dataflow (per-head
/// loops, concatenation, interleaved sections) composes naturally.
#[derive(Debug, Clone, Copy)]
pub struct GuardedSection {
    id: SectionId,
    strategy: Strategy,
    abft: AbftConfig,
    active: bool,
    immediate: bool,
}

impl GuardedSection {
    /// Open a section for one execution.
    ///
    /// `active` is the section's frequency-gate toggle for this execution;
    /// it is further gated by [`ProtectionConfig::is_off`] so a fully
    /// disabled config is a hard kill-switch regardless of toggles. Opening
    /// the section records it as checked or skipped in `report`.
    pub fn begin(
        id: SectionId,
        config: &ProtectionConfig,
        active: bool,
        report: &mut AbftReport,
    ) -> Self {
        let active = active && !config.is_off();
        if active {
            report.sections_checked += 1;
        } else {
            report.sections_skipped += 1;
        }
        Self {
            id,
            strategy: config.strategy,
            abft: config.abft,
            active,
            // The non-optimized baseline (Fig 8) does not use delayed
            // detection: it verifies every GEMM output immediately, the way
            // a generic ABFT composition would (§3.2 "Segmented Protection"
            // is one of the optimizations being ablated).
            immediate: config.strategy == Strategy::Separate,
        }
    }

    /// Open a whole-step guard scope for the non-GEMM operators
    /// (softmax, LayerNorm, GELU, residual adds, embedding, loss,
    /// sampler, optimizer moments).
    ///
    /// The returned [`OpGuard`](attn_tensor::OpGuard) is shared by
    /// reference across every `*_checked` op inside the step; its
    /// accumulated [`GuardStats`](attn_tensor::GuardStats) are folded
    /// into the step report with
    /// [`AbftReport::absorb_op_guard`](crate::report::AbftReport::absorb_op_guard).
    /// A disabled config yields an inactive guard — every checked op
    /// degenerates to its plain form, mirroring how an inactive section
    /// degrades its GEMMs.
    pub fn guard_step(config: &ProtectionConfig) -> attn_tensor::OpGuard {
        attn_tensor::OpGuard::new(!config.is_off(), config.abft.detect_tol)
    }

    /// Which section this is.
    pub fn id(&self) -> SectionId {
        self.id
    }

    /// Does this section perform detection this execution?
    pub fn active(&self) -> bool {
        self.active
    }

    /// Does this section verify every GEMM output immediately instead of
    /// delaying detection to the section exit (the [`Strategy::Separate`]
    /// ablation)?
    pub fn immediate(&self) -> bool {
        self.immediate
    }

    /// Detection/correction thresholds in force for this section.
    pub fn abft(&self) -> &AbftConfig {
        &self.abft
    }

    /// Column-encode a section input (plain wrap when inactive).
    pub fn encode_cols(&self, m: &Matrix) -> CheckedMatrix {
        if self.active {
            CheckedMatrix::encode_cols(m, self.strategy)
        } else {
            CheckedMatrix::from_plain(m)
        }
    }

    /// Row-encode a section input (plain wrap when inactive).
    pub fn encode_rows(&self, m: &Matrix) -> CheckedMatrix {
        if self.active {
            CheckedMatrix::encode_rows(m, self.strategy)
        } else {
            CheckedMatrix::from_plain(m)
        }
    }

    /// Wrap an operand that never carries checksums of its own (weights
    /// whose product inherits protection from the other operand).
    pub fn operand(&self, m: &Matrix) -> CheckedMatrix {
        CheckedMatrix::from_plain(m)
    }

    /// Guarded product `A · B`: checksums ride through under the section's
    /// strategy; plain product when inactive.
    pub fn gemm(&self, a: &CheckedMatrix, b: &CheckedMatrix) -> CheckedMatrix {
        if !self.active {
            return a.matmul(b);
        }
        match self.strategy {
            Strategy::Fused => a.matmul(b),
            Strategy::Separate => a.matmul_separate(b),
        }
    }

    /// Guarded product `A · Bᵀ` (`B`'s column checksums transpose into the
    /// product's row checksums — how `AS = Q·Kᵀ` acquires both borders).
    pub fn gemm_nt(&self, a: &CheckedMatrix, b: &CheckedMatrix) -> CheckedMatrix {
        if !self.active {
            return a.matmul_nt(b);
        }
        match self.strategy {
            Strategy::Fused => a.matmul_nt(b),
            Strategy::Separate => a.matmul_nt_separate(b),
        }
    }

    /// Fused encode-and-multiply entry step: equivalent to
    /// `self.gemm(&self.encode_cols(a), b)` — bit for bit — but under
    /// [`Strategy::Fused`] the encode sweep rides inside the GEMM's
    /// packing pass ([`CheckedMatrix::matmul_encode_cols`]), so entering a
    /// section costs no standalone pass over the operand and no augmented
    /// copy. Under [`Strategy::Separate`] it reproduces the unfused
    /// baseline (naive two-pass encode + separate checksum kernels), and
    /// it degrades to the plain product when the section is inactive.
    pub fn gemm_encode_cols(&self, a: &Matrix, b: &CheckedMatrix) -> CheckedMatrix {
        if !self.active {
            // Borrowed plain product: no wrap, no operand clone.
            return CheckedMatrix::matmul_plain(a, b);
        }
        match self.strategy {
            Strategy::Fused => CheckedMatrix::matmul_encode_cols(a, b),
            Strategy::Separate => {
                CheckedMatrix::encode_cols(a, Strategy::Separate).matmul_separate(b)
            }
        }
    }

    /// Row-side fused encode-and-multiply: equivalent to
    /// `self.gemm(a, &self.encode_rows(b))` with the encode sweep riding
    /// inside the GEMM — how each per-head `W_V` slice enters `S_CL`
    /// without its own encoding pass.
    pub fn gemm_encode_rows(&self, a: &CheckedMatrix, b: &Matrix) -> CheckedMatrix {
        if !self.active {
            // Borrowed plain product: no wrap, no operand clone.
            return CheckedMatrix::matmul_plain_rhs(a, b);
        }
        match self.strategy {
            Strategy::Fused => CheckedMatrix::matmul_encode_rows(a, b),
            Strategy::Separate => {
                a.matmul_separate(&CheckedMatrix::encode_rows(b, Strategy::Separate))
            }
        }
    }

    /// Fused adopt-and-multiply for a left operand inherited from an
    /// upstream section: checksums ride when already present, the fused
    /// entry encode runs when this section is active but the operand is
    /// unprotected, and the plain product is computed otherwise —
    /// `self.gemm(&self.adopt_cols(a), b)` without the standalone
    /// re-encode sweep.
    ///
    /// # Panics
    /// Panics when `a` carries row checksums (they would corrupt the
    /// product's inner dimension, exactly as in [`Self::gemm`]).
    pub fn gemm_adopt_cols(&self, a: &CheckedMatrix, b: &CheckedMatrix) -> CheckedMatrix {
        assert!(
            !a.has_row_checksums(),
            "gemm_adopt_cols: left operand must not carry row checksums"
        );
        if self.active && a.has_col_checksums() {
            self.gemm(a, b)
        } else if self.active {
            // buf() is exactly the logical data when no checksums are
            // present, so no extraction copy is needed.
            self.gemm_encode_cols(a.buf(), b)
        } else if a.has_col_checksums() {
            CheckedMatrix::matmul_plain(&a.logical(), b)
        } else {
            a.matmul(b)
        }
    }

    /// Leave the checksummed region for a nonlinear step and return the
    /// *plain* result: `f` mutates the logical data (softmax, GELU,
    /// masking, caching …). Checksums cannot survive a nonlinearity; with
    /// fused encoding the re-entry encode rides inside the next
    /// [`Self::gemm_encode_cols`] instead of a standalone
    /// [`Self::exit_reencode_cols`] sweep.
    pub fn exit_cols(&self, m: &CheckedMatrix, f: impl FnOnce(&mut Matrix)) -> Matrix {
        let mut data = m.logical();
        f(&mut data);
        data
    }

    /// Leave the checksummed region for a nonlinear step and re-enter it:
    /// `f` mutates the logical data (softmax, GELU, masking, caching …) and
    /// the result is column-encoded under this section's strategy (plain
    /// wrap when inactive). Checksums cannot survive a nonlinearity, so
    /// this is the mandated exit-and-re-encode boundary between chained
    /// GEMMs.
    pub fn exit_reencode_cols(
        &self,
        m: &CheckedMatrix,
        f: impl FnOnce(&mut Matrix),
    ) -> CheckedMatrix {
        let mut data = m.logical();
        f(&mut data);
        if self.active {
            CheckedMatrix::encode_cols(&data, self.strategy)
        } else {
            CheckedMatrix::from_plain(&data)
        }
    }

    /// Adapt a matrix inherited from an upstream section to this section's
    /// activity: encode when active but unprotected, strip when inactive
    /// but still carrying checksums, pass through otherwise.
    pub fn adopt_cols(&self, m: &CheckedMatrix) -> CheckedMatrix {
        if self.active && !m.has_col_checksums() {
            CheckedMatrix::encode_cols(&m.logical(), self.strategy)
        } else if !self.active && m.has_col_checksums() {
            CheckedMatrix::from_plain(&m.logical())
        } else {
            m.clone()
        }
    }

    /// The section's delayed detection point: run the two-sided correction
    /// protocol on `m` (no-op when inactive) and hand back a [`Detection`]
    /// for refinement and reporting. `head` attributes corrections to a
    /// per-head matrix (`usize::MAX` for model-wide ones).
    pub fn detect(&self, m: &mut CheckedMatrix, head: usize) -> Detection {
        let summary = if self.active {
            full_correct(m, &self.abft)
        } else {
            CorrectionSummary::default()
        };
        Detection {
            summary,
            id: self.id,
            head,
            abft: self.abft,
        }
    }

    /// Heal a source operand through its inherited *column* checksums, then
    /// refine the fixes to exact bits with `exact` (the producing dot
    /// product). Used for matrices the backward pass will reuse (`Q`, `K`),
    /// where a surviving extreme value would re-poison training.
    pub fn heal_operand_cols(
        &self,
        report: &mut AbftReport,
        m: &mut CheckedMatrix,
        head: usize,
        exact: impl Fn(usize, usize) -> f32,
    ) {
        let mut pass = correct_columns(m, &self.abft);
        apply_exact_fixes(m, &self.abft, pass.fixes.iter_mut(), exact);
        record_pass(report, &pass, self.id, head);
    }

    /// Row-checksum counterpart of [`Self::heal_operand_cols`] (the
    /// per-head `V` blocks inherit row checksums from `W_V`).
    pub fn heal_operand_rows(
        &self,
        report: &mut AbftReport,
        m: &mut CheckedMatrix,
        head: usize,
        exact: impl Fn(usize, usize) -> f32,
    ) {
        let mut pass = correct_rows(m, &self.abft);
        apply_exact_fixes(m, &self.abft, pass.fixes.iter_mut(), exact);
        record_pass(report, &pass, self.id, head);
    }
}

/// Outcome of one [`GuardedSection::detect`] call, pending refinement and
/// absorption into the report.
#[derive(Debug)]
pub struct Detection {
    summary: CorrectionSummary,
    id: SectionId,
    head: usize,
    abft: AbftConfig,
}

impl Detection {
    /// Total detections of any kind (corrections, propagations, rebuilds,
    /// unrecoverables). Sections heal their source operands when this is
    /// non-zero.
    pub fn detections(&self) -> usize {
        self.summary.total_detections()
    }

    /// Corrected elements across both passes.
    pub fn fixes(&self) -> usize {
        self.summary.total_fixes()
    }

    /// Exact-replay refinement: restore each corrected element to its
    /// original bits by replaying the producing dot product (`exact`),
    /// trusted only when the replay lands within detection-bound noise of
    /// the checksum reconstruction.
    pub fn refine(&mut self, m: &mut CheckedMatrix, exact: impl Fn(usize, usize) -> f32) {
        let fixes = self.summary.col_pass.fixes.iter_mut().chain(
            self.summary
                .row_pass
                .iter_mut()
                .flat_map(|p| p.fixes.iter_mut()),
        );
        apply_exact_fixes(m, &self.abft, fixes, exact);
    }

    /// Fold this detection into the running report.
    pub fn absorb(self, report: &mut AbftReport) {
        let summary = &self.summary;
        report.detections += summary.total_detections();
        report.propagations += summary.total_propagations();
        report.checksum_rebuilds += summary.stale_rebuilds
            + summary.col_pass.rebuilt.len()
            + summary
                .row_pass
                .as_ref()
                .map(|p| p.rebuilt.len())
                .unwrap_or(0);
        report.unrecovered += summary.unrecovered;
        for fix in summary
            .col_pass
            .fixes
            .iter()
            .chain(summary.row_pass.iter().flat_map(|p| p.fixes.iter()))
        {
            report.corrections.push(CorrectionRecord {
                section: self.id,
                head: self.head,
                row: fix.row,
                col: fix.col,
                old_value: fix.old_value,
                new_value: fix.new_value,
            });
        }
    }
}

/// Exact replay of one element of an `op(A)·op(B)` product under the
/// packed kernel's accumulation-order contract: a fresh `f32` partial per
/// [`KC`]-sized `k`-block (`kk` ascending within the block), partials
/// combined in block order on top of zero — exactly how
/// `attn_tensor::gemm` accumulates every output element, for all of the
/// NN/NT/TN layouts. The result is therefore bit-identical to what the
/// original GEMM produced for that cell.
///
/// [`KC`]: attn_tensor::gemm::KC
pub fn replay_nn(a_row: &[f32], b_col: impl Fn(usize) -> f32) -> f32 {
    use attn_tensor::gemm::KC;
    let mut acc = 0.0f32;
    let mut p0 = 0usize;
    while p0 < a_row.len() {
        let pend = (p0 + KC).min(a_row.len());
        let mut partial = 0.0f32;
        for (kk, &av) in a_row[p0..pend].iter().enumerate() {
            partial += av * b_col(p0 + kk);
        }
        acc += partial;
        p0 = pend;
    }
    acc
}

/// Restore corrected elements to their exact original bits by replaying the
/// dot product that produced each one.
///
/// Checksum reconstruction is only accurate to the ride-along checksums'
/// round-off (~1e-6 relative here); Adam's normalised updates amplify even
/// that into visible trajectory divergence within a few steps. Replaying
/// the single producing dot is O(k) per corrected element, keeps recovery
/// rollback-free, and makes a corrected step bit-identical to the
/// fault-free step — the Fig 6 parity property.
///
/// A replay is trusted only when it lands within detection-bound noise of
/// the checksum reconstruction: the reconstruction's own error is orders of
/// magnitude below that bound, while a replay against a still-corrupt
/// operand (non-finite, or a sub-threshold corruption that escaped operand
/// healing) differs by at least a detectable delta — in both cases the
/// reconstructed value is kept.
fn apply_exact_fixes<'a>(
    m: &mut CheckedMatrix,
    cfg: &AbftConfig,
    fixes: impl Iterator<Item = &'a mut ElementFix>,
    exact: impl Fn(usize, usize) -> f32,
) {
    let mut rows: Vec<usize> = Vec::new(); // attn-lint: allow(hot-path-alloc-reach) — fault-repair bookkeeping, entered only on detected corruption
    let mut cols: Vec<usize> = Vec::new(); // attn-lint: allow(hot-path-alloc-reach) — fault-repair bookkeeping (see above)
    for fix in fixes {
        let v = exact(fix.row, fix.col);
        let row_abs: f32 = m.logical_row(fix.row).iter().map(|x| x.abs()).sum();
        let col_abs: f32 = (0..m.rows()).map(|r| m.get(r, fix.col).abs()).sum();
        let tol = cfg.detection_bound(row_abs.max(col_abs));
        // NaN fails the comparison, so non-finite replays are rejected too.
        if (v - fix.new_value).abs() <= tol {
            m.set(fix.row, fix.col, v);
            // Keep the record truthful: `new_value` must be what is actually
            // left in the matrix, not the intermediate reconstruction.
            fix.new_value = v;
            rows.push(fix.row);
            cols.push(fix.col);
        }
    }
    // Refreshed values shift the data away from whatever borders the
    // correction pass rebuilt; re-derive the touched borders from data.
    rows.sort_unstable();
    rows.dedup();
    cols.sort_unstable();
    cols.dedup();
    if m.has_row_checksums() {
        for &r in &rows {
            m.recompute_row_checksum(r);
        }
    }
    if m.has_col_checksums() {
        for &c in &cols {
            m.recompute_col_checksum(c);
        }
    }
}

/// Fold a single-pass outcome (source-operand healing) into the report.
fn record_pass(report: &mut AbftReport, pass: &PassOutcome, section: SectionId, head: usize) {
    report.detections += pass.fixes.len();
    report.checksum_rebuilds += pass.rebuilt.len();
    for fix in &pass.fixes {
        report.corrections.push(CorrectionRecord {
            section,
            head,
            row: fix.row,
            col: fix.col,
            old_value: fix.old_value,
            new_value: fix.new_value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::gemm;
    use attn_tensor::rng::TensorRng;

    fn section(active: bool) -> (GuardedSection, AbftReport) {
        let mut report = AbftReport::default();
        let sec = GuardedSection::begin(
            SectionId::Output,
            &ProtectionConfig::full(),
            active,
            &mut report,
        );
        (sec, report)
    }

    #[test]
    fn begin_bumps_section_counters() {
        let (_, r_on) = section(true);
        assert_eq!((r_on.sections_checked, r_on.sections_skipped), (1, 0));
        let (_, r_off) = section(false);
        assert_eq!((r_off.sections_checked, r_off.sections_skipped), (0, 1));
    }

    #[test]
    fn off_config_is_a_hard_kill_switch() {
        let mut report = AbftReport::default();
        let sec = GuardedSection::begin(
            SectionId::Output,
            &ProtectionConfig::off(),
            true,
            &mut report,
        );
        assert!(!sec.active());
        assert_eq!(report.sections_skipped, 1);
    }

    #[test]
    fn inactive_section_is_bit_transparent() {
        let mut rng = TensorRng::seed_from(3);
        let x = rng.normal_matrix(5, 6, 1.0);
        let w = rng.normal_matrix(6, 4, 1.0);
        let (sec, _) = section(false);
        let y = sec.gemm(&sec.encode_cols(&x), &sec.operand(&w));
        assert!(!y.has_col_checksums());
        assert_eq!(y.logical(), gemm::matmul(&x, &w));
    }

    #[test]
    fn active_chain_detects_and_refines_to_exact_bits() {
        let mut rng = TensorRng::seed_from(4);
        let x = rng.normal_matrix(6, 8, 1.0);
        let w = rng.normal_matrix(8, 5, 1.0);
        let clean = gemm::matmul(&x, &w);
        let (sec, mut report) = section(true);
        let mut y = sec.gemm(&sec.encode_cols(&x), &sec.operand(&w));
        y.set(2, 3, f32::INFINITY);
        let mut det = sec.detect(&mut y, usize::MAX);
        assert!(det.detections() > 0);
        det.refine(&mut y, |r, c| replay_nn(x.row(r), |kk| w[(kk, c)]));
        det.absorb(&mut report);
        assert_eq!(y.logical(), clean, "replay must restore exact bits");
        assert_eq!(report.correction_count(), 1);
        assert_eq!(report.unrecovered, 0);
        assert_eq!(report.corrections[0].section, SectionId::Output);
    }

    #[test]
    fn exit_reencode_applies_nonlinearity_and_reencodes() {
        let mut rng = TensorRng::seed_from(5);
        let x = rng.normal_matrix(4, 4, 1.0);
        let (sec, _) = section(true);
        let enc = sec.encode_cols(&x);
        let out = sec.exit_reencode_cols(&enc, |m| {
            for v in m.data_mut() {
                *v = v.tanh();
            }
        });
        assert!(out.has_col_checksums());
        assert_eq!(out.logical(), x.map(|v| v.tanh()));
        assert!(out.max_checksum_discrepancy() < 1e-4);
    }

    #[test]
    fn adopt_cols_covers_all_four_cases() {
        let mut rng = TensorRng::seed_from(6);
        let x = rng.normal_matrix(4, 4, 1.0);
        let enc = CheckedMatrix::encode_cols(&x, Strategy::Fused);
        let plain = CheckedMatrix::from_plain(&x);
        let (on, _) = section(true);
        let (off, _) = section(false);
        assert!(on.adopt_cols(&plain).has_col_checksums());
        assert!(on.adopt_cols(&enc).has_col_checksums());
        assert!(!off.adopt_cols(&enc).has_col_checksums());
        assert!(!off.adopt_cols(&plain).has_col_checksums());
        assert_eq!(on.adopt_cols(&plain).logical(), x);
    }

    #[test]
    fn fused_entry_steps_match_encode_then_gemm() {
        let mut rng = TensorRng::seed_from(11);
        let x = rng.normal_matrix(9, 12, 1.0);
        let w = rng.normal_matrix(12, 7, 1.0);
        for active in [false, true] {
            let (sec, _) = section(active);
            let staged_c = sec.gemm(&sec.encode_cols(&x), &sec.operand(&w));
            let fused_c = sec.gemm_encode_cols(&x, &sec.operand(&w));
            assert_eq!(fused_c.buf(), staged_c.buf(), "cols, active={active}");
            let staged_r = sec.gemm(&sec.operand(&x), &sec.encode_rows(&w));
            let fused_r = sec.gemm_encode_rows(&sec.operand(&x), &w);
            assert_eq!(fused_r.buf(), staged_r.buf(), "rows, active={active}");
        }
    }

    #[test]
    fn fused_entry_matches_separate_strategy_baseline() {
        let mut rng = TensorRng::seed_from(12);
        let x = rng.normal_matrix(6, 8, 1.0);
        let w = rng.normal_matrix(8, 5, 1.0);
        let mut report = AbftReport::default();
        let sec = GuardedSection::begin(
            SectionId::Output,
            &ProtectionConfig::full_unoptimized(),
            true,
            &mut report,
        );
        let staged = sec.gemm(&sec.encode_cols(&x), &sec.operand(&w));
        let fused = sec.gemm_encode_cols(&x, &sec.operand(&w));
        assert_eq!(fused.buf(), staged.buf());
    }

    #[test]
    fn gemm_adopt_cols_covers_all_four_cases() {
        let mut rng = TensorRng::seed_from(13);
        let x = rng.normal_matrix(5, 6, 1.0);
        let w = rng.normal_matrix(6, 4, 1.0);
        let enc = CheckedMatrix::encode_cols(&x, Strategy::Fused);
        let plain = CheckedMatrix::from_plain(&x);
        for active in [false, true] {
            let (sec, _) = section(active);
            for a in [&plain, &enc] {
                let got = sec.gemm_adopt_cols(a, &sec.operand(&w));
                let want = sec.gemm(&sec.adopt_cols(a), &sec.operand(&w));
                assert_eq!(got.buf(), want.buf(), "active={active}");
                assert_eq!(got.has_col_checksums(), active);
            }
        }
    }

    #[test]
    fn exit_cols_applies_nonlinearity_and_returns_plain_data() {
        let mut rng = TensorRng::seed_from(14);
        let x = rng.normal_matrix(4, 4, 1.0);
        let (sec, _) = section(true);
        let enc = sec.encode_cols(&x);
        let out = sec.exit_cols(&enc, |m| {
            for v in m.data_mut() {
                *v = v.tanh();
            }
        });
        assert_eq!(out, x.map(|v| v.tanh()));
    }

    #[test]
    fn replay_nn_reproduces_kernel_bits_across_kc_blocks() {
        use attn_tensor::gemm::KC;
        let mut rng = TensorRng::seed_from(15);
        let k = 2 * KC + 19;
        let x = rng.normal_matrix(3, k, 1.0);
        let w = rng.normal_matrix(k, 4, 1.0);
        let c = gemm::matmul(&x, &w);
        for r in 0..3 {
            for col in 0..4 {
                let replayed = replay_nn(x.row(r), |kk| w[(kk, col)]);
                assert_eq!(
                    replayed.to_bits(),
                    c[(r, col)].to_bits(),
                    "({r},{col}): replay must hit the kernel's exact bits"
                );
            }
        }
    }

    #[test]
    fn heal_operand_cols_restores_source_matrix() {
        let mut rng = TensorRng::seed_from(7);
        let x = rng.normal_matrix(6, 6, 1.0);
        let w = rng.normal_matrix(6, 6, 1.0);
        let clean = gemm::matmul(&x, &w);
        let (sec, mut report) = section(true);
        let mut q = sec.gemm(&sec.encode_cols(&x), &sec.operand(&w));
        q.set(1, 2, f32::NAN);
        sec.heal_operand_cols(&mut report, &mut q, usize::MAX, |r, c| {
            replay_nn(x.row(r), |kk| w[(kk, c)])
        });
        assert_eq!(q.logical(), clean);
        assert_eq!(report.correction_count(), 1);
    }
}
