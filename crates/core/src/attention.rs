//! Protected multi-head attention: the three ABFT sections with checksum
//! passing (paper §4.4, Fig 5), composed from the reusable
//! [`GuardedSection`] pipeline in [`crate::section`].
//!
//! The six attention GEMMs are grouped into sections so that every section
//! tolerates one fault, wherever it strikes:
//!
//! * **S_AS** `{X·W_Q, X·W_K, Q·Kᵀ}` — `X`'s column encoding rides inside
//!   the projection GEMMs' packing pass (fused entry, §4.6); `Q` and
//!   `K` inherit column checksums through the fused GEMMs; `AS = Q·Kᵀ`
//!   arrives with *both* borders (K's column checksums transpose into AS's
//!   row checksums). Detection is **delayed** to AS: a 0D fault in `Q`
//!   surfaces as a deterministic 1R there, a 0D fault in `K` as a 1C with
//!   poisoned column checksums — both healed by [`crate::detect::full_correct`].
//! * **S_CL** `{X·W_V, AP·V}` — each head's slice of `W_V` is row-encoded,
//!   so `V` inherits row checksums; `AP` (re-encoded after the nonlinear
//!   softmax) carries column checksums; `CL = AP·V` has both borders.
//! * **S_O** `{CL·W_O}` — `CL`'s column checksums ride through the output
//!   GEMM; `O` is protected column-side (1R residue from CL plus 0D faults).
//!
//! When a section's detection fires, the *source* operand matrices (`Q`,
//! `K`, `V`) are also healed through their own inherited checksums — they
//! are reused by the backward pass, where a surviving extreme value would
//! re-poison training.
//!
//! Fault-injection campaigns hook into the pipeline between every GEMM and
//! its detection point via [`FaultSite`] callbacks.

use crate::checked::CheckedMatrix;
use crate::config::ProtectionConfig;
use crate::report::{AbftReport, SectionId};
use crate::section::{replay_nn, ForwardCtx, GuardedSection};
use attn_tensor::guard::softmax_rows_checked_inplace;
use attn_tensor::ops::apply_additive_mask;
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;

/// The GEMM (or softmax) outputs a fault can strike, mirroring the paper's
/// injection sites (Table 2 / Table 4 rows) plus the FFN extension sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnOp {
    /// Output of `X·W_Q`.
    Q,
    /// Output of `X·W_K`.
    K,
    /// Output of `X·W_V`.
    V,
    /// Output of `Q·Kᵀ` (pre-softmax attention scores).
    AS,
    /// Output of `AP·V` (per-head context layer).
    CL,
    /// Output of `CL·W_O`.
    O,
    /// Output of the FFN expansion GEMM `H·W_1` (pre-GELU) — an
    /// end-to-end extension site outside the paper's attention scope.
    Ffn1,
    /// Output of the FFN contraction GEMM `GELU(·)·W_2`.
    Ffn2,
}

impl AttnOp {
    /// All *attention* injectable sites, in pipeline order.
    pub const ALL: [AttnOp; 6] = [
        AttnOp::Q,
        AttnOp::K,
        AttnOp::V,
        AttnOp::AS,
        AttnOp::CL,
        AttnOp::O,
    ];

    /// The five sites of the paper's vulnerability study (Table 4).
    pub const STUDY: [AttnOp; 5] = [AttnOp::Q, AttnOp::K, AttnOp::V, AttnOp::AS, AttnOp::CL];

    /// The two FFN GEMM outputs protected by the end-to-end extension.
    pub const FFN: [AttnOp; 2] = [AttnOp::Ffn1, AttnOp::Ffn2];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AttnOp::Q => "Q",
            AttnOp::K => "K",
            AttnOp::V => "V",
            AttnOp::AS => "AS",
            AttnOp::CL => "CL",
            AttnOp::O => "O",
            AttnOp::Ffn1 => "FFN1",
            AttnOp::Ffn2 => "FFN2",
        }
    }
}

/// Where a hook fires: the op plus the head for per-head matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// Which GEMM output is exposed.
    pub op: AttnOp,
    /// Head index for per-head sites (`AS`, `CL`, `V`); `None` for the
    /// model-wide `Q`, `K`, `O` and FFN matrices.
    pub head: Option<usize>,
}

/// Mutable callback giving campaigns access to each GEMM output *before*
/// its section's detection runs.
pub type FaultHook<'a> = &'a mut dyn FnMut(FaultSite, &mut CheckedMatrix);

/// Which sections perform detection in this execution (the per-execution
/// realisation of the §4.5 frequencies, handed out by
/// [`crate::policy::ProtectionPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionToggles {
    /// Run S_AS protection.
    pub s_as: bool,
    /// Run S_CL protection.
    pub s_cl: bool,
    /// Run S_O protection.
    pub s_o: bool,
    /// Run S_FFN protection (the feed-forward extension; ignored by the
    /// attention-only forward).
    pub s_ffn: bool,
}

impl SectionToggles {
    /// Protect everything.
    pub fn all() -> Self {
        Self {
            s_as: true,
            s_cl: true,
            s_o: true,
            s_ffn: true,
        }
    }

    /// Protect nothing.
    pub fn none() -> Self {
        Self {
            s_as: false,
            s_cl: false,
            s_o: false,
            s_ffn: false,
        }
    }

    /// Any section active?
    pub fn any(&self) -> bool {
        self.s_as || self.s_cl || self.s_o || self.s_ffn
    }
}

/// Learnable parameters of one multi-head attention block.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionWeights {
    /// Model width.
    pub hidden: usize,
    /// Number of attention heads (must divide `hidden`).
    pub heads: usize,
    /// Query projection, `hidden × hidden`.
    pub wq: Matrix,
    /// Key projection.
    pub wk: Matrix,
    /// Value projection.
    pub wv: Matrix,
    /// Output projection.
    pub wo: Matrix,
    /// Query bias.
    pub bq: Vec<f32>,
    /// Key bias.
    pub bk: Vec<f32>,
    /// Value bias.
    pub bv: Vec<f32>,
    /// Output bias.
    pub bo: Vec<f32>,
}

impl AttentionWeights {
    /// Xavier-initialised weights.
    ///
    /// # Panics
    /// Panics when `heads` does not divide `hidden`.
    pub fn random(hidden: usize, heads: usize, rng: &mut TensorRng) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "heads must divide hidden"
        );
        Self {
            hidden,
            heads,
            wq: rng.xavier_matrix(hidden, hidden),
            wk: rng.xavier_matrix(hidden, hidden),
            wv: rng.xavier_matrix(hidden, hidden),
            wo: rng.xavier_matrix(hidden, hidden),
            bq: vec![0.0; hidden],
            bk: vec![0.0; hidden],
            bv: vec![0.0; hidden],
            bo: vec![0.0; hidden],
        }
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// Activations cached for the backward pass and for propagation studies.
///
/// All values are post-correction when protection ran, raw otherwise.
#[derive(Debug, Clone)]
pub struct AttnCache {
    /// Block input, `seq × hidden`.
    pub x: Matrix,
    /// Query activations (post bias), `seq × hidden`.
    pub q: Matrix,
    /// Key activations, `seq × hidden`.
    pub k: Matrix,
    /// Value activations, `seq × hidden`.
    pub v: Matrix,
    /// Pre-softmax scaled (and masked) attention scores per head,
    /// `seq × seq` each.
    pub scores: Vec<Matrix>,
    /// Post-softmax attention probabilities per head, `seq × seq` each.
    pub ap: Vec<Matrix>,
    /// Merged context layer, `seq × hidden`.
    pub cl: Matrix,
}

/// Forward output: the attention block result plus the backward cache.
#[derive(Debug, Clone)]
pub struct AttnForward {
    /// `seq × hidden` attention output (post `W_O` and bias).
    pub output: Matrix,
    /// Cached activations.
    pub cache: AttnCache,
}

/// Per-call options for [`ProtectedAttention::forward`] — the borrowed
/// pieces of a [`ForwardCtx`] minus the report.
pub struct ForwardOptions<'a> {
    /// Additive attention mask (`seq × seq`), e.g. causal or local-banded.
    pub mask: Option<&'a Matrix>,
    /// Per-execution section toggles (from the frequency gates).
    pub toggles: SectionToggles,
    /// Optional fault-injection hook.
    pub hook: Option<FaultHook<'a>>,
}

impl Default for ForwardOptions<'_> {
    fn default() -> Self {
        Self {
            mask: None,
            toggles: SectionToggles::all(),
            hook: None,
        }
    }
}

/// A multi-head attention block wrapped with ATTNChecker protection.
#[derive(Debug, Clone)]
pub struct ProtectedAttention {
    /// Block parameters.
    pub weights: AttentionWeights,
    /// Protection policy.
    pub config: ProtectionConfig,
}

impl ProtectedAttention {
    /// Wrap weights with a protection policy.
    pub fn new(weights: AttentionWeights, config: ProtectionConfig) -> Self {
        Self { weights, config }
    }

    /// Convenience forward: full protection, no mask, no hook.
    pub fn forward_simple(&self, x: &Matrix, report: &mut AbftReport) -> AttnForward {
        self.forward(x, ForwardOptions::default(), report)
    }

    /// Run the protected attention pipeline on `x` (`seq × hidden`).
    ///
    /// Compatibility wrapper around [`Self::forward_ctx`].
    ///
    /// # Panics
    /// Panics if `x.cols() != hidden`.
    pub fn forward(
        &self,
        x: &Matrix,
        opts: ForwardOptions<'_>,
        report: &mut AbftReport,
    ) -> AttnForward {
        let mut ctx = ForwardCtx {
            mask: opts.mask,
            toggles: opts.toggles,
            hook: opts.hook,
            report,
        };
        self.forward_ctx(x, &mut ctx)
    }

    /// Run the protected attention pipeline with an explicit per-execution
    /// [`ForwardCtx`] — the entry point shared by the sequential and
    /// batched paths.
    ///
    /// # Panics
    /// Panics if `x.cols() != hidden`.
    #[allow(clippy::needless_range_loop)] // head index drives several buffers
    pub fn forward_ctx(&self, x: &Matrix, ctx: &mut ForwardCtx<'_, '_>) -> AttnForward {
        let w = &self.weights;
        assert_eq!(x.cols(), w.hidden, "input width mismatch");
        let seq = x.rows();
        let heads = w.heads;
        let d = w.head_dim();
        let scale = 1.0 / (d as f32).sqrt();
        let mask = ctx.mask;

        let s_as = GuardedSection::begin(
            SectionId::AttentionScore,
            &self.config,
            ctx.toggles.s_as,
            ctx.report,
        );
        let s_cl = GuardedSection::begin(
            SectionId::ContextLayer,
            &self.config,
            ctx.toggles.s_cl,
            ctx.report,
        );
        let s_o =
            GuardedSection::begin(SectionId::Output, &self.config, ctx.toggles.s_o, ctx.report);
        // Non-GEMM scope: screens the per-head softmax outputs (the one
        // nonlinearity inside attention) and heals from the cached scores.
        let op_guard = GuardedSection::guard_step(&self.config);

        // ------------------------------------------------ section S_AS
        // X enters the section through fused encode-and-multiply: its
        // column-checksum projections accumulate inside each projection
        // GEMM's packing pass, and Q and K inherit the riding checksums —
        // no standalone encode sweep over X, no augmented copy.
        let mut q = s_as.gemm_encode_cols(x, &s_as.operand(&w.wq));
        let mut k = s_as.gemm_encode_cols(x, &s_as.operand(&w.wk));
        q.add_bias(&w.bq);
        k.add_bias(&w.bk);
        ctx.fire(
            FaultSite {
                op: AttnOp::Q,
                head: None,
            },
            &mut q,
        );
        ctx.fire(
            FaultSite {
                op: AttnOp::K,
                head: None,
            },
            &mut k,
        );

        let heal_q = |q: &mut CheckedMatrix, report: &mut AbftReport| {
            s_as.heal_operand_cols(report, q, usize::MAX, |r, c| {
                replay_nn(x.row(r), |kk| w.wq[(kk, c)]) + w.bq[c]
            });
        };
        let heal_k = |k: &mut CheckedMatrix, report: &mut AbftReport| {
            s_as.heal_operand_cols(report, k, usize::MAX, |r, c| {
                replay_nn(x.row(r), |kk| w.wk[(kk, c)]) + w.bk[c]
            });
        };
        // Heal the source operands lazily at the first delayed detection: Q
        // and K are cached for backward, where an uncorrected 0D extreme
        // value would re-poison the gradients — and the exact refinement of
        // AS below needs clean operands to replay against. Under immediate
        // (Separate) verification they are healed right here instead.
        let mut qk_healed = s_as.immediate();
        if s_as.active() && s_as.immediate() {
            heal_q(&mut q, ctx.report);
            heal_k(&mut k, ctx.report);
        }

        let mut scores_cache = Vec::with_capacity(heads);
        let mut ap_mats: Vec<Matrix> = Vec::with_capacity(heads);
        for h in 0..heads {
            let qh = q.slice_cols(h * d, (h + 1) * d);
            let kh = k.slice_cols(h * d, (h + 1) * d);
            let mut as_h = s_as.gemm_nt(&qh, &kh);
            as_h.scale_inplace(scale);
            ctx.fire(
                FaultSite {
                    op: AttnOp::AS,
                    head: Some(h),
                },
                &mut as_h,
            );

            let mut det = s_as.detect(&mut as_h, h);
            if det.detections() > 0 {
                if !qk_healed {
                    qk_healed = true;
                    heal_q(&mut q, ctx.report);
                    heal_k(&mut k, ctx.report);
                }
                let lo = h * d;
                det.refine(&mut as_h, |r, c| {
                    replay_nn(&q.logical_row(r)[lo..lo + d], |kk| {
                        k.logical_row(c)[lo + kk]
                    }) * scale
                });
            }
            det.absorb(ctx.report);

            // Leave the checksummed region: mask + softmax are nonlinear.
            // AP stays plain here; its re-encoding rides inside the fused
            // `AP·V` GEMM that re-enters S_CL below. The cached post-mask
            // scores double as the op guard's preserved input: rows whose
            // probabilities fail the sum-to-one screen recompute from them.
            let ap_m = s_cl.exit_cols(&as_h, |as_mat| {
                if let Some(m) = mask {
                    apply_additive_mask(as_mat, m);
                }
                scores_cache.push(as_mat.clone());
                softmax_rows_checked_inplace(as_mat, &op_guard);
            });
            ap_mats.push(ap_m);
        }

        // ------------------------------------------------ section S_CL
        let x_plain = s_cl.operand(x);
        let mut cl_blocks = Vec::with_capacity(heads);
        let mut v_cols: Vec<Matrix> = Vec::with_capacity(heads);
        for h in 0..heads {
            let wv_h = w.wv.submatrix(0, w.hidden, h * d, (h + 1) * d);
            let bv_h = &w.bv[h * d..(h + 1) * d];
            // W_V's per-head slice enters through the row-side fused
            // encode: its row-checksum projections accumulate inside the
            // `X·W_V` packing pass and ride into V.
            let mut v_h = s_cl.gemm_encode_rows(&x_plain, &wv_h);
            v_h.add_bias(bv_h);
            ctx.fire(
                FaultSite {
                    op: AttnOp::V,
                    head: Some(h),
                },
                &mut v_h,
            );

            let heal_v = |v_h: &mut CheckedMatrix, report: &mut AbftReport| {
                s_cl.heal_operand_rows(report, v_h, h, |r, c| {
                    replay_nn(x.row(r), |kk| wv_h[(kk, c)]) + bv_h[c]
                });
            };
            if s_cl.active() && s_cl.immediate() && v_h.has_row_checksums() {
                heal_v(&mut v_h, ctx.report);
            }

            // AP re-enters the checksummed region inside the fused GEMM:
            // its column encoding (the old standalone re-encode sweep
            // after softmax) accumulates in this product's packing pass.
            let mut cl_h = s_cl.gemm_encode_cols(&ap_mats[h], &v_h);
            ctx.fire(
                FaultSite {
                    op: AttnOp::CL,
                    head: Some(h),
                },
                &mut cl_h,
            );
            let mut det = s_cl.detect(&mut cl_h, h);
            if det.detections() > 0 {
                if v_h.has_row_checksums() {
                    // Heal the cached V the same way Q/K are healed.
                    heal_v(&mut v_h, ctx.report);
                }
                let ap = &ap_mats[h];
                det.refine(&mut cl_h, |r, c| replay_nn(ap.row(r), |kk| v_h.get(kk, c)));
            }
            det.absorb(ctx.report);
            v_cols.push(v_h.logical());
            cl_blocks.push(cl_h.drop_row_checksums());
        }
        let cl_merged = CheckedMatrix::concat_cols(&cl_blocks);

        // ------------------------------------------------ section S_O
        // CL is inherited from S_CL: ride its checksums when present,
        // fused-encode on entry when S_O is active but S_CL was skipped.
        let mut o = s_o.gemm_adopt_cols(&cl_merged, &s_o.operand(&w.wo));
        o.add_bias(&w.bo);
        ctx.fire(
            FaultSite {
                op: AttnOp::O,
                head: None,
            },
            &mut o,
        );
        let mut det = s_o.detect(&mut o, usize::MAX);
        if det.fixes() > 0 {
            det.refine(&mut o, |r, c| {
                replay_nn(cl_merged.logical_row(r), |kk| w.wo[(kk, c)]) + w.bo[c]
            });
        }
        det.absorb(ctx.report);
        ctx.report.absorb_op_guard(op_guard.take_stats());

        // Assemble caches (all post-correction).
        let q_mat = q.logical();
        let k_mat = k.logical();
        let mut v_mat = Matrix::zeros(seq, w.hidden);
        for (h, vh) in v_cols.iter().enumerate() {
            for r in 0..seq {
                v_mat.row_mut(r)[h * d..(h + 1) * d].copy_from_slice(vh.row(r));
            }
        }
        AttnForward {
            output: o.logical(),
            cache: AttnCache {
                x: x.clone(),
                q: q_mat,
                k: k_mat,
                v: v_mat,
                scores: scores_cache,
                ap: ap_mats,
                cl: cl_merged.logical(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_fault::FaultKind;
    use attn_tensor::ops::causal_mask;

    fn setup(seq: usize, hidden: usize, heads: usize) -> (Matrix, ProtectedAttention) {
        let mut rng = TensorRng::seed_from(42);
        let w = AttentionWeights::random(hidden, heads, &mut rng);
        let x = rng.normal_matrix(seq, hidden, 0.5);
        (x, ProtectedAttention::new(w, ProtectionConfig::full()))
    }

    #[test]
    fn protected_matches_unprotected_when_fault_free() {
        let (x, attn) = setup(12, 32, 4);
        let unprotected = ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::off());
        let mut r1 = AbftReport::default();
        let mut r2 = AbftReport::default();
        let a = attn.forward_simple(&x, &mut r1);
        let b = unprotected.forward(
            &x,
            ForwardOptions {
                toggles: SectionToggles::none(),
                ..Default::default()
            },
            &mut r2,
        );
        assert!(
            a.output.approx_eq(&b.output, 1e-4, 1e-4),
            "protection must not perturb fault-free results"
        );
        assert!(r1.is_quiet(), "no detections expected: {r1}");
    }

    #[test]
    fn separate_strategy_matches_fused_results() {
        let (x, attn) = setup(10, 24, 3);
        let sep =
            ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::full_unoptimized());
        let mut r1 = AbftReport::default();
        let mut r2 = AbftReport::default();
        let a = attn.forward_simple(&x, &mut r1);
        let b = sep.forward_simple(&x, &mut r2);
        assert!(a.output.approx_eq(&b.output, 1e-4, 1e-4));
        assert!(r2.is_quiet());
    }

    #[test]
    fn masked_forward_respects_causality() {
        let (x, attn) = setup(8, 16, 2);
        let mask = causal_mask(8);
        let mut r = AbftReport::default();
        let out = attn.forward(
            &x,
            ForwardOptions {
                mask: Some(&mask),
                ..Default::default()
            },
            &mut r,
        );
        // Attention probabilities above the diagonal must be ~0.
        for ap in &out.cache.ap {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    assert!(ap[(i, j)] < 1e-6, "ap[{i},{j}] = {}", ap[(i, j)]);
                }
            }
        }
        assert!(r.is_quiet());
    }

    fn inject_then_check(op: AttnOp, kind: FaultKind) {
        let (x, attn) = setup(10, 32, 4);
        // Ground truth from a clean protected run.
        let mut quiet = AbftReport::default();
        let clean = attn.forward_simple(&x, &mut quiet);

        let mut fired = false;
        let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
            let right_site = site.op == op && (site.head.is_none() || site.head == Some(1));
            if right_site && !fired {
                fired = true;
                let (r, c) = (m.rows() / 2, m.cols() / 3);
                let old = m.get(r, c);
                m.set(r, c, kind.apply(old));
            }
        };
        let mut report = AbftReport::default();
        let out = attn.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles::all(),
                hook: Some(&mut hook),
            },
            &mut report,
        );
        assert!(fired, "hook never fired for {op:?}");
        assert!(
            out.output.approx_eq(&clean.output, 1e-2, 1e-2),
            "{op:?}/{kind:?}: output diverged after correction; report {report}"
        );
        assert!(out.output.all_finite());
        assert!(
            report.correction_count() > 0,
            "{op:?}/{kind:?}: no corrections"
        );
        assert_eq!(report.unrecovered, 0);
    }

    #[test]
    fn corrects_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::Inf);
        }
    }

    #[test]
    fn corrects_nan_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NaN);
        }
    }

    #[test]
    fn corrects_near_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NearInf);
        }
    }

    #[test]
    fn corrects_neg_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NegInf);
        }
    }

    #[test]
    fn unprotected_run_propagates_fault_to_output() {
        let (x, attn) = setup(10, 32, 4);
        let off = ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::off());
        let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
            if site.op == AttnOp::Q {
                m.set(2, 5, f32::NAN);
            }
        };
        let mut report = AbftReport::default();
        let out = off.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles::none(),
                hook: Some(&mut hook),
            },
            &mut report,
        );
        assert!(
            !out.output.all_finite(),
            "NaN must reach the output unprotected"
        );
        assert_eq!(report.correction_count(), 0);
    }

    #[test]
    fn cached_q_is_healed_after_delayed_detection() {
        let (x, attn) = setup(10, 32, 4);
        let mut quiet = AbftReport::default();
        let clean = attn.forward_simple(&x, &mut quiet);
        let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
            if site.op == AttnOp::Q {
                m.set(3, 7, f32::INFINITY);
            }
        };
        let mut report = AbftReport::default();
        let out = attn.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles::all(),
                hook: Some(&mut hook),
            },
            &mut report,
        );
        // The cached Q (used by backward) must be finite and match clean.
        assert!(out.cache.q.all_finite());
        assert!(out.cache.q.approx_eq(&clean.cache.q, 1e-2, 1e-2));
    }

    #[test]
    fn toggled_off_section_skips_detection() {
        let (x, attn) = setup(8, 16, 2);
        let mut report = AbftReport::default();
        let _ = attn.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles {
                    s_as: true,
                    s_cl: false,
                    s_o: false,
                    s_ffn: false,
                },
                hook: None,
            },
            &mut report,
        );
        assert_eq!(report.sections_checked, 1);
        assert_eq!(report.sections_skipped, 2);
    }

    #[test]
    fn output_shape_and_cache_shapes() {
        let (x, attn) = setup(9, 24, 3);
        let mut r = AbftReport::default();
        let out = attn.forward_simple(&x, &mut r);
        assert_eq!((out.output.rows(), out.output.cols()), (9, 24));
        assert_eq!((out.cache.q.rows(), out.cache.q.cols()), (9, 24));
        assert_eq!(out.cache.ap.len(), 3);
        assert_eq!((out.cache.ap[0].rows(), out.cache.ap[0].cols()), (9, 9));
        assert_eq!((out.cache.cl.rows(), out.cache.cl.cols()), (9, 24));
        // AP rows are probability distributions.
        for h in 0..3 {
            for r in 0..9 {
                let s: f32 = out.cache.ap[h].row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }
}
