//! Protected multi-head attention: the three ABFT sections with checksum
//! passing (paper §4.4, Fig 5).
//!
//! The six attention GEMMs are grouped into sections so that every section
//! tolerates one fault, wherever it strikes:
//!
//! * **S_AS** `{X·W_Q, X·W_K, Q·Kᵀ}` — `X` is column-encoded once; `Q` and
//!   `K` inherit column checksums through the fused GEMMs; `AS = Q·Kᵀ`
//!   arrives with *both* borders (K's column checksums transpose into AS's
//!   row checksums). Detection is **delayed** to AS: a 0D fault in `Q`
//!   surfaces as a deterministic 1R there, a 0D fault in `K` as a 1C with
//!   poisoned column checksums — both healed by [`crate::detect::full_correct`].
//! * **S_CL** `{X·W_V, AP·V}` — each head's slice of `W_V` is row-encoded,
//!   so `V` inherits row checksums; `AP` (re-encoded after the nonlinear
//!   softmax) carries column checksums; `CL = AP·V` has both borders.
//! * **S_O** `{CL·W_O}` — `CL`'s column checksums ride through the output
//!   GEMM; `O` is protected column-side (1R residue from CL plus 0D faults).
//!
//! When a section's detection fires, the *source* operand matrices (`Q`,
//! `K`, `V`) are also healed through their own inherited checksums — they
//! are reused by the backward pass, where a surviving extreme value would
//! re-poison training.
//!
//! Fault-injection campaigns hook into the pipeline between every GEMM and
//! its detection point via [`FaultSite`] callbacks.

use crate::checked::CheckedMatrix;
use crate::config::{ProtectionConfig, Strategy};
use crate::detect::{
    correct_columns, correct_rows, full_correct, CorrectionSummary, ElementFix, PassOutcome,
};
use crate::report::{AbftReport, CorrectionRecord, SectionId};
use attn_tensor::gemm;
use attn_tensor::ops::{apply_additive_mask, softmax_rows_inplace};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;

/// The GEMM (or softmax) outputs a fault can strike, mirroring the paper's
/// injection sites (Table 2 / Table 4 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnOp {
    /// Output of `X·W_Q`.
    Q,
    /// Output of `X·W_K`.
    K,
    /// Output of `X·W_V`.
    V,
    /// Output of `Q·Kᵀ` (pre-softmax attention scores).
    AS,
    /// Output of `AP·V` (per-head context layer).
    CL,
    /// Output of `CL·W_O`.
    O,
}

impl AttnOp {
    /// All injectable sites, in pipeline order.
    pub const ALL: [AttnOp; 6] = [
        AttnOp::Q,
        AttnOp::K,
        AttnOp::V,
        AttnOp::AS,
        AttnOp::CL,
        AttnOp::O,
    ];

    /// The five sites of the paper's vulnerability study (Table 4).
    pub const STUDY: [AttnOp; 5] = [AttnOp::Q, AttnOp::K, AttnOp::V, AttnOp::AS, AttnOp::CL];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AttnOp::Q => "Q",
            AttnOp::K => "K",
            AttnOp::V => "V",
            AttnOp::AS => "AS",
            AttnOp::CL => "CL",
            AttnOp::O => "O",
        }
    }
}

/// Where a hook fires: the op plus the head for per-head matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// Which GEMM output is exposed.
    pub op: AttnOp,
    /// Head index for per-head sites (`AS`, `CL`, `V`); `None` for the
    /// model-wide `Q`, `K`, `O` matrices.
    pub head: Option<usize>,
}

/// Mutable callback giving campaigns access to each GEMM output *before*
/// its section's detection runs.
pub type FaultHook<'a> = &'a mut dyn FnMut(FaultSite, &mut CheckedMatrix);

/// Which sections perform detection in this execution (the per-execution
/// realisation of the §4.5 frequencies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionToggles {
    /// Run S_AS protection.
    pub s_as: bool,
    /// Run S_CL protection.
    pub s_cl: bool,
    /// Run S_O protection.
    pub s_o: bool,
}

impl SectionToggles {
    /// Protect everything.
    pub fn all() -> Self {
        Self {
            s_as: true,
            s_cl: true,
            s_o: true,
        }
    }

    /// Protect nothing.
    pub fn none() -> Self {
        Self {
            s_as: false,
            s_cl: false,
            s_o: false,
        }
    }

    /// Any section active?
    pub fn any(&self) -> bool {
        self.s_as || self.s_cl || self.s_o
    }
}

/// Learnable parameters of one multi-head attention block.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionWeights {
    /// Model width.
    pub hidden: usize,
    /// Number of attention heads (must divide `hidden`).
    pub heads: usize,
    /// Query projection, `hidden × hidden`.
    pub wq: Matrix,
    /// Key projection.
    pub wk: Matrix,
    /// Value projection.
    pub wv: Matrix,
    /// Output projection.
    pub wo: Matrix,
    /// Query bias.
    pub bq: Vec<f32>,
    /// Key bias.
    pub bk: Vec<f32>,
    /// Value bias.
    pub bv: Vec<f32>,
    /// Output bias.
    pub bo: Vec<f32>,
}

impl AttentionWeights {
    /// Xavier-initialised weights.
    ///
    /// # Panics
    /// Panics when `heads` does not divide `hidden`.
    pub fn random(hidden: usize, heads: usize, rng: &mut TensorRng) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "heads must divide hidden"
        );
        Self {
            hidden,
            heads,
            wq: rng.xavier_matrix(hidden, hidden),
            wk: rng.xavier_matrix(hidden, hidden),
            wv: rng.xavier_matrix(hidden, hidden),
            wo: rng.xavier_matrix(hidden, hidden),
            bq: vec![0.0; hidden],
            bk: vec![0.0; hidden],
            bv: vec![0.0; hidden],
            bo: vec![0.0; hidden],
        }
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// Activations cached for the backward pass and for propagation studies.
///
/// All values are post-correction when protection ran, raw otherwise.
#[derive(Debug, Clone)]
pub struct AttnCache {
    /// Block input, `seq × hidden`.
    pub x: Matrix,
    /// Query activations (post bias), `seq × hidden`.
    pub q: Matrix,
    /// Key activations, `seq × hidden`.
    pub k: Matrix,
    /// Value activations, `seq × hidden`.
    pub v: Matrix,
    /// Pre-softmax scaled (and masked) attention scores per head,
    /// `seq × seq` each.
    pub scores: Vec<Matrix>,
    /// Post-softmax attention probabilities per head, `seq × seq` each.
    pub ap: Vec<Matrix>,
    /// Merged context layer, `seq × hidden`.
    pub cl: Matrix,
}

/// Forward output: the attention block result plus the backward cache.
#[derive(Debug, Clone)]
pub struct AttnForward {
    /// `seq × hidden` attention output (post `W_O` and bias).
    pub output: Matrix,
    /// Cached activations.
    pub cache: AttnCache,
}

/// Per-call options for [`ProtectedAttention::forward`].
pub struct ForwardOptions<'a> {
    /// Additive attention mask (`seq × seq`), e.g. causal or local-banded.
    pub mask: Option<&'a Matrix>,
    /// Per-execution section toggles (from the frequency gates).
    pub toggles: SectionToggles,
    /// Optional fault-injection hook.
    pub hook: Option<FaultHook<'a>>,
}

impl Default for ForwardOptions<'_> {
    fn default() -> Self {
        Self {
            mask: None,
            toggles: SectionToggles::all(),
            hook: None,
        }
    }
}

/// A multi-head attention block wrapped with ATTNChecker protection.
#[derive(Debug, Clone)]
pub struct ProtectedAttention {
    /// Block parameters.
    pub weights: AttentionWeights,
    /// Protection policy.
    pub config: ProtectionConfig,
}

impl ProtectedAttention {
    /// Wrap weights with a protection policy.
    pub fn new(weights: AttentionWeights, config: ProtectionConfig) -> Self {
        Self { weights, config }
    }

    /// Convenience forward: full protection, no mask, no hook.
    pub fn forward_simple(&self, x: &Matrix, report: &mut AbftReport) -> AttnForward {
        self.forward(x, ForwardOptions::default(), report)
    }

    /// Run the protected attention pipeline on `x` (`seq × hidden`).
    ///
    /// # Panics
    /// Panics if `x.cols() != hidden`.
    #[allow(clippy::needless_range_loop)] // head index drives several buffers
    pub fn forward(
        &self,
        x: &Matrix,
        mut opts: ForwardOptions<'_>,
        report: &mut AbftReport,
    ) -> AttnForward {
        let w = &self.weights;
        assert_eq!(x.cols(), w.hidden, "input width mismatch");
        let seq = x.rows();
        let heads = w.heads;
        let d = w.head_dim();
        let strat = self.config.strategy;
        let cfg = &self.config.abft;
        let scale = 1.0 / (d as f32).sqrt();

        let as_on = opts.toggles.s_as && !self.config.is_off();
        let cl_on = opts.toggles.s_cl && !self.config.is_off();
        let o_on = opts.toggles.s_o && !self.config.is_off();
        // The non-optimized baseline (Fig 8) does not use delayed detection:
        // it verifies every GEMM output immediately, the way a generic ABFT
        // composition would (§3.2 "Segmented Protection" is one of the
        // optimizations being ablated).
        let immediate = strat == Strategy::Separate;
        bump_section_counters(report, as_on, cl_on, o_on);

        // ------------------------------------------------ section S_AS
        let (mut q, mut k) = if as_on {
            let xc = CheckedMatrix::encode_cols(x, strat);
            let wq = CheckedMatrix::from_plain(&w.wq);
            let wk = CheckedMatrix::from_plain(&w.wk);
            let mut q = mul(&xc, &wq, strat);
            let mut k = mul(&xc, &wk, strat);
            q.add_bias(&w.bq);
            k.add_bias(&w.bk);
            (q, k)
        } else {
            let mut q = CheckedMatrix::from_plain(x).matmul(&CheckedMatrix::from_plain(&w.wq));
            let mut k = CheckedMatrix::from_plain(x).matmul(&CheckedMatrix::from_plain(&w.wk));
            q.add_bias(&w.bq);
            k.add_bias(&w.bk);
            (q, k)
        };
        fire(&mut opts.hook, AttnOp::Q, None, &mut q);
        fire(&mut opts.hook, AttnOp::K, None, &mut k);
        if as_on && immediate {
            let qfix = heal_projection(&mut q, cfg, x, &w.wq, &w.bq);
            let kfix = heal_projection(&mut k, cfg, x, &w.wk, &w.bk);
            record_fixes(report, &qfix, SectionId::AttentionScore, usize::MAX);
            record_fixes(report, &kfix, SectionId::AttentionScore, usize::MAX);
        }

        let mut scores_cache = Vec::with_capacity(heads);
        let mut ap_checked: Vec<CheckedMatrix> = Vec::with_capacity(heads);
        // Heal the source operands lazily at the first delayed detection: Q
        // and K are cached for backward, where an uncorrected 0D extreme
        // value would re-poison the gradients — and the exact refinement of
        // AS below needs clean operands to replay against. Under immediate
        // (Separate) verification they were already healed above.
        let mut qk_healed = immediate;
        for h in 0..heads {
            let qh = q.slice_cols(h * d, (h + 1) * d);
            let kh = k.slice_cols(h * d, (h + 1) * d);
            let mut as_h = if as_on {
                mul_nt(&qh, &kh, strat)
            } else {
                qh.matmul_nt(&kh)
            };
            as_h.scale_inplace(scale);
            fire(&mut opts.hook, AttnOp::AS, Some(h), &mut as_h);
            if as_on {
                let mut summary = full_correct(&mut as_h, cfg);
                if summary.total_detections() > 0 {
                    if !qk_healed {
                        qk_healed = true;
                        let qfix = heal_projection(&mut q, cfg, x, &w.wq, &w.bq);
                        let kfix = heal_projection(&mut k, cfg, x, &w.wk, &w.bk);
                        record_fixes(report, &qfix, SectionId::AttentionScore, usize::MAX);
                        record_fixes(report, &kfix, SectionId::AttentionScore, usize::MAX);
                    }
                    let lo = h * d;
                    apply_exact_fixes(&mut as_h, cfg, summary_fixes_mut(&mut summary), |r, c| {
                        gemm::dot(&q.logical_row(r)[lo..lo + d], &k.logical_row(c)[lo..lo + d])
                            * scale
                    });
                }
                absorb(report, &summary, SectionId::AttentionScore, h);
            }

            // Leave the checksummed region: mask + softmax are nonlinear.
            let mut as_mat = as_h.logical();
            if let Some(m) = opts.mask {
                apply_additive_mask(&mut as_mat, m);
            }
            scores_cache.push(as_mat.clone());
            softmax_rows_inplace(&mut as_mat);
            let ap_c = if cl_on {
                CheckedMatrix::encode_cols(&as_mat, strat)
            } else {
                CheckedMatrix::from_plain(&as_mat)
            };
            ap_checked.push(ap_c);
        }

        // ------------------------------------------------ section S_CL
        let x_plain = CheckedMatrix::from_plain(x);
        let mut cl_blocks = Vec::with_capacity(heads);
        let mut v_cols: Vec<Matrix> = Vec::with_capacity(heads);
        for h in 0..heads {
            let wv_h = w.wv.submatrix(0, w.hidden, h * d, (h + 1) * d);
            let bv_h = &w.bv[h * d..(h + 1) * d];
            let mut v_h = if cl_on {
                let wv_enc = CheckedMatrix::encode_rows(&wv_h, strat);
                let mut v_h = mul(&x_plain, &wv_enc, strat);
                v_h.add_bias(bv_h);
                v_h
            } else {
                let mut v_h = x_plain.matmul(&CheckedMatrix::from_plain(&wv_h));
                v_h.add_bias(bv_h);
                v_h
            };
            fire(&mut opts.hook, AttnOp::V, Some(h), &mut v_h);
            if cl_on && immediate && v_h.has_row_checksums() {
                let vfix = heal_value_head(&mut v_h, cfg, x, &wv_h, bv_h);
                record_fixes(report, &vfix, SectionId::ContextLayer, h);
            }

            let mut cl_h = if cl_on {
                mul(&ap_checked[h], &v_h, strat)
            } else {
                ap_checked[h].matmul(&v_h)
            };
            fire(&mut opts.hook, AttnOp::CL, Some(h), &mut cl_h);
            if cl_on {
                let mut summary = full_correct(&mut cl_h, cfg);
                if summary.total_detections() > 0 {
                    if v_h.has_row_checksums() {
                        // Heal the cached V the same way Q/K are healed.
                        let vfix = heal_value_head(&mut v_h, cfg, x, &wv_h, bv_h);
                        record_fixes(report, &vfix, SectionId::ContextLayer, h);
                    }
                    let ap = &ap_checked[h];
                    apply_exact_fixes(&mut cl_h, cfg, summary_fixes_mut(&mut summary), |r, c| {
                        replay_nn(ap.logical_row(r), |kk| v_h.get(kk, c))
                    });
                }
                absorb(report, &summary, SectionId::ContextLayer, h);
            }
            v_cols.push(v_h.logical());
            cl_blocks.push(cl_h.drop_row_checksums());
        }
        let cl_merged = CheckedMatrix::concat_cols(&cl_blocks);

        // ------------------------------------------------ section S_O
        let cl_for_o = if o_on && !cl_merged.has_col_checksums() {
            CheckedMatrix::encode_cols(&cl_merged.logical(), strat)
        } else if !o_on && cl_merged.has_col_checksums() {
            CheckedMatrix::from_plain(&cl_merged.logical())
        } else {
            cl_merged.clone()
        };
        let mut o = if o_on {
            mul(&cl_for_o, &CheckedMatrix::from_plain(&w.wo), strat)
        } else {
            cl_for_o.matmul(&CheckedMatrix::from_plain(&w.wo))
        };
        o.add_bias(&w.bo);
        fire(&mut opts.hook, AttnOp::O, None, &mut o);
        if o_on {
            let mut summary = full_correct(&mut o, cfg);
            if summary.total_fixes() > 0 {
                apply_exact_fixes(&mut o, cfg, summary_fixes_mut(&mut summary), |r, c| {
                    replay_nn(cl_for_o.logical_row(r), |kk| w.wo[(kk, c)]) + w.bo[c]
                });
            }
            absorb(report, &summary, SectionId::Output, usize::MAX);
        }

        // Assemble caches (all post-correction).
        let q_mat = q.logical();
        let k_mat = k.logical();
        let mut v_mat = Matrix::zeros(seq, w.hidden);
        for (h, vh) in v_cols.iter().enumerate() {
            for r in 0..seq {
                v_mat.row_mut(r)[h * d..(h + 1) * d].copy_from_slice(vh.row(r));
            }
        }
        let ap_cache: Vec<Matrix> = ap_checked.iter().map(|m| m.logical()).collect();

        AttnForward {
            output: o.logical(),
            cache: AttnCache {
                x: x.clone(),
                q: q_mat,
                k: k_mat,
                v: v_mat,
                scores: scores_cache,
                ap: ap_cache,
                cl: cl_merged.logical(),
            },
        }
    }
}

/// Exact replay of one element of a row-major `A·B` product: the same
/// `kk`-ordered f32 accumulation as `gemm::matmul_into`, so the result is
/// bit-identical to what the original GEMM produced for that cell.
fn replay_nn(a_row: &[f32], b_col: impl Fn(usize) -> f32) -> f32 {
    let mut acc = 0.0f32;
    for (kk, &av) in a_row.iter().enumerate() {
        acc += av * b_col(kk);
    }
    acc
}

/// Restore corrected elements to their exact original bits by replaying the
/// dot product that produced each one.
///
/// Checksum reconstruction is only accurate to the ride-along checksums'
/// round-off (~1e-6 relative here); Adam's normalised updates amplify even
/// that into visible trajectory divergence within a few steps. Replaying
/// the single producing dot is O(k) per corrected element, keeps recovery
/// rollback-free, and makes a corrected step bit-identical to the
/// fault-free step — the Fig 6 parity property.
///
/// A replay is trusted only when it lands within detection-bound noise of
/// the checksum reconstruction: the reconstruction's own error is orders of
/// magnitude below that bound, while a replay against a still-corrupt
/// operand (non-finite, or a sub-threshold corruption that escaped operand
/// healing) differs by at least a detectable delta — in both cases the
/// reconstructed value is kept.
fn apply_exact_fixes<'a>(
    m: &mut CheckedMatrix,
    cfg: &crate::config::AbftConfig,
    fixes: impl Iterator<Item = &'a mut ElementFix>,
    exact: impl Fn(usize, usize) -> f32,
) {
    let mut rows: Vec<usize> = Vec::new();
    let mut cols: Vec<usize> = Vec::new();
    for fix in fixes {
        let v = exact(fix.row, fix.col);
        let row_abs: f32 = m.logical_row(fix.row).iter().map(|x| x.abs()).sum();
        let col_abs: f32 = (0..m.rows()).map(|r| m.get(r, fix.col).abs()).sum();
        let tol = cfg.detection_bound(row_abs.max(col_abs));
        // NaN fails the comparison, so non-finite replays are rejected too.
        if (v - fix.new_value).abs() <= tol {
            m.set(fix.row, fix.col, v);
            // Keep the record truthful: `new_value` must be what is actually
            // left in the matrix, not the intermediate reconstruction.
            fix.new_value = v;
            rows.push(fix.row);
            cols.push(fix.col);
        }
    }
    // Refreshed values shift the data away from whatever borders the
    // correction pass rebuilt; re-derive the touched borders from data.
    rows.sort_unstable();
    rows.dedup();
    cols.sort_unstable();
    cols.dedup();
    if m.has_row_checksums() {
        for &r in &rows {
            m.recompute_row_checksum(r);
        }
    }
    if m.has_col_checksums() {
        for &c in &cols {
            m.recompute_col_checksum(c);
        }
    }
}

/// Mutable fix records of a two-sided correction, both passes.
fn summary_fixes_mut(s: &mut CorrectionSummary) -> impl Iterator<Item = &mut ElementFix> {
    s.col_pass
        .fixes
        .iter_mut()
        .chain(s.row_pass.iter_mut().flat_map(|p| p.fixes.iter_mut()))
}

/// Heal a `X·W + b` projection output (`Q`, `K`) through its column
/// checksums, then refine the fixes to exact bits from the clean operands.
fn heal_projection(
    m: &mut CheckedMatrix,
    cfg: &crate::config::AbftConfig,
    x: &Matrix,
    w: &Matrix,
    bias: &[f32],
) -> PassOutcome {
    let mut fix = correct_columns(m, cfg);
    apply_exact_fixes(m, cfg, fix.fixes.iter_mut(), |r, c| {
        replay_nn(x.row(r), |kk| w[(kk, c)]) + bias[c]
    });
    fix
}

/// Heal a per-head `V = X·W_V[h] + b_V[h]` block through its row checksums,
/// then refine the fixes to exact bits from the clean operands.
fn heal_value_head(
    m: &mut CheckedMatrix,
    cfg: &crate::config::AbftConfig,
    x: &Matrix,
    wv_h: &Matrix,
    bv_h: &[f32],
) -> PassOutcome {
    let mut fix = correct_rows(m, cfg);
    apply_exact_fixes(m, cfg, fix.fixes.iter_mut(), |r, c| {
        replay_nn(x.row(r), |kk| wv_h[(kk, c)]) + bv_h[c]
    });
    fix
}

/// Strategy dispatch for `A · B`.
fn mul(a: &CheckedMatrix, b: &CheckedMatrix, strat: Strategy) -> CheckedMatrix {
    match strat {
        Strategy::Fused => a.matmul(b),
        Strategy::Separate => a.matmul_separate(b),
    }
}

/// Strategy dispatch for `A · Bᵀ`.
fn mul_nt(a: &CheckedMatrix, b: &CheckedMatrix, strat: Strategy) -> CheckedMatrix {
    match strat {
        Strategy::Fused => a.matmul_nt(b),
        Strategy::Separate => a.matmul_nt_separate(b),
    }
}

/// Fire the fault hook, if any.
fn fire(hook: &mut Option<FaultHook<'_>>, op: AttnOp, head: Option<usize>, m: &mut CheckedMatrix) {
    if let Some(h) = hook.as_mut() {
        h(FaultSite { op, head }, m);
    }
}

fn bump_section_counters(report: &mut AbftReport, as_on: bool, cl_on: bool, o_on: bool) {
    for on in [as_on, cl_on, o_on] {
        if on {
            report.sections_checked += 1;
        } else {
            report.sections_skipped += 1;
        }
    }
}

/// Fold a correction summary into the running report.
fn absorb(report: &mut AbftReport, summary: &CorrectionSummary, section: SectionId, head: usize) {
    report.detections += summary.total_detections();
    report.propagations += summary.total_propagations();
    report.checksum_rebuilds += summary.stale_rebuilds
        + summary.col_pass.rebuilt.len()
        + summary
            .row_pass
            .as_ref()
            .map(|p| p.rebuilt.len())
            .unwrap_or(0);
    report.unrecovered += summary.unrecovered;
    for fix in summary
        .col_pass
        .fixes
        .iter()
        .chain(summary.row_pass.iter().flat_map(|p| p.fixes.iter()))
    {
        report.corrections.push(CorrectionRecord {
            section,
            head,
            row: fix.row,
            col: fix.col,
            old_value: fix.old_value,
            new_value: fix.new_value,
        });
    }
}

/// Fold a single-pass outcome (source-operand healing) into the report.
fn record_fixes(
    report: &mut AbftReport,
    pass: &crate::detect::PassOutcome,
    section: SectionId,
    head: usize,
) {
    report.detections += pass.fixes.len();
    report.checksum_rebuilds += pass.rebuilt.len();
    for fix in &pass.fixes {
        report.corrections.push(CorrectionRecord {
            section,
            head,
            row: fix.row,
            col: fix.col,
            old_value: fix.old_value,
            new_value: fix.new_value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_fault::FaultKind;
    use attn_tensor::ops::causal_mask;

    fn setup(seq: usize, hidden: usize, heads: usize) -> (Matrix, ProtectedAttention) {
        let mut rng = TensorRng::seed_from(42);
        let w = AttentionWeights::random(hidden, heads, &mut rng);
        let x = rng.normal_matrix(seq, hidden, 0.5);
        (x, ProtectedAttention::new(w, ProtectionConfig::full()))
    }

    #[test]
    fn protected_matches_unprotected_when_fault_free() {
        let (x, attn) = setup(12, 32, 4);
        let unprotected = ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::off());
        let mut r1 = AbftReport::default();
        let mut r2 = AbftReport::default();
        let a = attn.forward_simple(&x, &mut r1);
        let b = unprotected.forward(
            &x,
            ForwardOptions {
                toggles: SectionToggles::none(),
                ..Default::default()
            },
            &mut r2,
        );
        assert!(
            a.output.approx_eq(&b.output, 1e-4, 1e-4),
            "protection must not perturb fault-free results"
        );
        assert!(r1.is_quiet(), "no detections expected: {r1}");
    }

    #[test]
    fn separate_strategy_matches_fused_results() {
        let (x, attn) = setup(10, 24, 3);
        let sep =
            ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::full_unoptimized());
        let mut r1 = AbftReport::default();
        let mut r2 = AbftReport::default();
        let a = attn.forward_simple(&x, &mut r1);
        let b = sep.forward_simple(&x, &mut r2);
        assert!(a.output.approx_eq(&b.output, 1e-4, 1e-4));
        assert!(r2.is_quiet());
    }

    #[test]
    fn masked_forward_respects_causality() {
        let (x, attn) = setup(8, 16, 2);
        let mask = causal_mask(8);
        let mut r = AbftReport::default();
        let out = attn.forward(
            &x,
            ForwardOptions {
                mask: Some(&mask),
                ..Default::default()
            },
            &mut r,
        );
        // Attention probabilities above the diagonal must be ~0.
        for ap in &out.cache.ap {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    assert!(ap[(i, j)] < 1e-6, "ap[{i},{j}] = {}", ap[(i, j)]);
                }
            }
        }
        assert!(r.is_quiet());
    }

    fn inject_then_check(op: AttnOp, kind: FaultKind) {
        let (x, attn) = setup(10, 32, 4);
        // Ground truth from a clean protected run.
        let mut quiet = AbftReport::default();
        let clean = attn.forward_simple(&x, &mut quiet);

        let mut fired = false;
        let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
            let right_site = site.op == op && (site.head.is_none() || site.head == Some(1));
            if right_site && !fired {
                fired = true;
                let (r, c) = (m.rows() / 2, m.cols() / 3);
                let old = m.get(r, c);
                m.set(r, c, kind.apply(old));
            }
        };
        let mut report = AbftReport::default();
        let out = attn.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles::all(),
                hook: Some(&mut hook),
            },
            &mut report,
        );
        assert!(fired, "hook never fired for {op:?}");
        assert!(
            out.output.approx_eq(&clean.output, 1e-2, 1e-2),
            "{op:?}/{kind:?}: output diverged after correction; report {report}"
        );
        assert!(out.output.all_finite());
        assert!(
            report.correction_count() > 0,
            "{op:?}/{kind:?}: no corrections"
        );
        assert_eq!(report.unrecovered, 0);
    }

    #[test]
    fn corrects_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::Inf);
        }
    }

    #[test]
    fn corrects_nan_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NaN);
        }
    }

    #[test]
    fn corrects_near_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NearInf);
        }
    }

    #[test]
    fn corrects_neg_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NegInf);
        }
    }

    #[test]
    fn unprotected_run_propagates_fault_to_output() {
        let (x, attn) = setup(10, 32, 4);
        let off = ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::off());
        let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
            if site.op == AttnOp::Q {
                m.set(2, 5, f32::NAN);
            }
        };
        let mut report = AbftReport::default();
        let out = off.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles::none(),
                hook: Some(&mut hook),
            },
            &mut report,
        );
        assert!(
            !out.output.all_finite(),
            "NaN must reach the output unprotected"
        );
        assert_eq!(report.correction_count(), 0);
    }

    #[test]
    fn cached_q_is_healed_after_delayed_detection() {
        let (x, attn) = setup(10, 32, 4);
        let mut quiet = AbftReport::default();
        let clean = attn.forward_simple(&x, &mut quiet);
        let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
            if site.op == AttnOp::Q {
                m.set(3, 7, f32::INFINITY);
            }
        };
        let mut report = AbftReport::default();
        let out = attn.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles::all(),
                hook: Some(&mut hook),
            },
            &mut report,
        );
        // The cached Q (used by backward) must be finite and match clean.
        assert!(out.cache.q.all_finite());
        assert!(out.cache.q.approx_eq(&clean.cache.q, 1e-2, 1e-2));
    }

    #[test]
    fn toggled_off_section_skips_detection() {
        let (x, attn) = setup(8, 16, 2);
        let mut report = AbftReport::default();
        let _ = attn.forward(
            &x,
            ForwardOptions {
                mask: None,
                toggles: SectionToggles {
                    s_as: true,
                    s_cl: false,
                    s_o: false,
                },
                hook: None,
            },
            &mut report,
        );
        assert_eq!(report.sections_checked, 1);
        assert_eq!(report.sections_skipped, 2);
    }

    #[test]
    fn output_shape_and_cache_shapes() {
        let (x, attn) = setup(9, 24, 3);
        let mut r = AbftReport::default();
        let out = attn.forward_simple(&x, &mut r);
        assert_eq!((out.output.rows(), out.output.cols()), (9, 24));
        assert_eq!((out.cache.q.rows(), out.cache.q.cols()), (9, 24));
        assert_eq!(out.cache.ap.len(), 3);
        assert_eq!((out.cache.ap[0].rows(), out.cache.ap[0].cols()), (9, 9));
        assert_eq!((out.cache.cl.rows(), out.cache.cl.cols()), (9, 24));
        // AP rows are probability distributions.
        for h in 0..3 {
            for r in 0..9 {
                let s: f32 = out.cache.ap[h].row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }
}
