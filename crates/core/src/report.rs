//! Bookkeeping for detections, corrections, and protection activity.

use std::fmt;

/// Where in the attention pipeline an event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionId {
    /// `S_AS = {X·W_Q, X·W_K, Q·Kᵀ}`.
    AttentionScore,
    /// `S_CL = {X·W_V, AP·V}`.
    ContextLayer,
    /// `S_O = {CL·W_O}`.
    Output,
    /// `S_FFN = {H·W_1, GELU(·)·W_2}` — the feed-forward extension beyond
    /// the paper's attention scope.
    FeedForward,
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SectionId::AttentionScore => "S_AS",
            SectionId::ContextLayer => "S_CL",
            SectionId::Output => "S_O",
            SectionId::FeedForward => "S_FFN",
        })
    }
}

/// One applied correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectionRecord {
    /// Section in which the correction ran.
    pub section: SectionId,
    /// Head index (usize::MAX when not head-scoped, e.g. the output GEMM).
    pub head: usize,
    /// Row of the corrected element in the protected matrix.
    pub row: usize,
    /// Column of the corrected element.
    pub col: usize,
    /// Corrupted value.
    pub old_value: f32,
    /// Restored value.
    pub new_value: f32,
}

/// Aggregated ABFT activity across one or more forward passes.
///
/// Reports are merged bottom-up: per-head summaries into per-layer, layers
/// into a training step. The evaluation binaries read these counters to
/// reproduce the paper's "100% detection and correction" claim (§5.2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbftReport {
    /// Vectors flagged by detection (including those later corrected).
    pub detections: usize,
    /// Applied corrections.
    pub corrections: Vec<CorrectionRecord>,
    /// 1D propagations recognised (case 4) — resolved by the orthogonal
    /// pass.
    pub propagations: usize,
    /// Checksum borders rebuilt after corruption or staleness.
    pub checksum_rebuilds: usize,
    /// Errors that survived all passes (should stay 0 under the paper's
    /// single-fault-per-section model).
    pub unrecovered: usize,
    /// Sections that actually ran detection.
    pub sections_checked: usize,
    /// Sections skipped by the frequency gate.
    pub sections_skipped: usize,
    /// Invariant screens evaluated by the non-GEMM op guards
    /// (`OpGuard` scopes: softmax, LayerNorm, GELU, residual add,
    /// embedding, loss, sampler, optimizer moments).
    pub op_checks: usize,
    /// Op-guard screens whose exact recompute differed bitwise from the
    /// live value — genuine non-GEMM detections.
    pub op_detections: usize,
    /// Exact op-guard heals applied (recompute-from-inputs or bit
    /// restores adopted).
    pub op_heals: usize,
}

impl AbftReport {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: &AbftReport) {
        self.detections += other.detections;
        self.corrections.extend_from_slice(&other.corrections);
        self.propagations += other.propagations;
        self.checksum_rebuilds += other.checksum_rebuilds;
        self.unrecovered += other.unrecovered;
        self.sections_checked += other.sections_checked;
        self.sections_skipped += other.sections_skipped;
        self.op_checks += other.op_checks;
        self.op_detections += other.op_detections;
        self.op_heals += other.op_heals;
    }

    /// Fold one non-GEMM op guard's counters into this report. Guard
    /// detections that could not be healed join the shared
    /// `unrecovered` pool.
    pub fn absorb_op_guard(&mut self, s: attn_tensor::GuardStats) {
        self.op_checks += s.checks;
        self.op_detections += s.detections;
        self.op_heals += s.heals;
        self.unrecovered += s.unrecovered;
    }

    /// True when nothing was detected anywhere.
    pub fn is_quiet(&self) -> bool {
        self.detections == 0
            && self.corrections.is_empty()
            && self.unrecovered == 0
            && self.op_detections == 0
    }

    /// Number of corrections applied.
    pub fn correction_count(&self) -> usize {
        self.corrections.len()
    }
}

impl fmt::Display for AbftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "detections={} corrections={} propagations={} rebuilds={} unrecovered={} checked={} skipped={} op_checks={} op_detections={} op_heals={}",
            self.detections,
            self.corrections.len(),
            self.propagations,
            self.checksum_rebuilds,
            self.unrecovered,
            self.sections_checked,
            self.sections_skipped,
            self.op_checks,
            self.op_detections,
            self.op_heals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = AbftReport {
            detections: 2,
            corrections: vec![CorrectionRecord {
                section: SectionId::AttentionScore,
                head: 0,
                row: 1,
                col: 2,
                old_value: f32::INFINITY,
                new_value: 0.5,
            }],
            ..AbftReport::default()
        };
        let b = AbftReport {
            detections: 3,
            unrecovered: 1,
            ..AbftReport::default()
        };
        a.merge(&b);
        assert_eq!(a.detections, 5);
        assert_eq!(a.correction_count(), 1);
        assert_eq!(a.unrecovered, 1);
    }

    #[test]
    fn quiet_report() {
        let mut r = AbftReport::default();
        assert!(r.is_quiet());
        r.detections = 1;
        assert!(!r.is_quiet());
    }

    #[test]
    fn op_guard_detections_break_quiet_and_merge() {
        let mut r = AbftReport::default();
        r.absorb_op_guard(attn_tensor::GuardStats {
            checks: 7,
            detections: 0,
            heals: 0,
            unrecovered: 0,
        });
        assert!(r.is_quiet(), "checks alone must stay quiet");
        r.absorb_op_guard(attn_tensor::GuardStats {
            checks: 1,
            detections: 2,
            heals: 1,
            unrecovered: 1,
        });
        assert!(!r.is_quiet());
        assert_eq!(r.op_checks, 8);
        assert_eq!(r.op_detections, 2);
        assert_eq!(r.op_heals, 1);
        assert_eq!(r.unrecovered, 1);

        let mut total = AbftReport::default();
        total.merge(&r);
        total.merge(&r);
        assert_eq!(total.op_checks, 16);
        assert_eq!(total.op_detections, 4);
        assert_eq!(total.op_heals, 2);
    }

    #[test]
    fn section_display() {
        assert_eq!(SectionId::AttentionScore.to_string(), "S_AS");
        assert_eq!(SectionId::ContextLayer.to_string(), "S_CL");
        assert_eq!(SectionId::Output.to_string(), "S_O");
        assert_eq!(SectionId::FeedForward.to_string(), "S_FFN");
    }
}
