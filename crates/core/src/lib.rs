//! # attnchecker
//!
//! Rust implementation of **ATTNChecker** (PPoPP '25): the first
//! Algorithm-Based Fault Tolerance (ABFT) scheme for the attention mechanism
//! of transformer LLMs that detects *and corrects* extreme soft errors —
//! INF, NaN, and near-INF — in real time, avoiding checkpoint rollbacks.
//!
//! ## Layered design (bottom-up)
//!
//! * [`checksum`] — dual (unweighted + weighted) checksum encoding for
//!   matrices, in both a fused single-pass form and a deliberately naive
//!   multi-pass form (the Fig 8/9 ablation baseline).
//! * [`checked`] — [`CheckedMatrix`]: a matrix physically augmented with
//!   checksum rows/columns so checksum *updates* ride along the very same
//!   GEMM that produces the data (paper §4.6 "Updating").
//! * [`eec`] — per-vector Extreme-Error-Correcting ABFT with the four-case
//!   dispatch of paper Fig 3 (finite δ / INF δ / NaN δ / propagation).
//! * [`detect`] — matrix-level correction passes: deterministic patterns via
//!   one-sided checksums, nondeterministic patterns via the two-sided
//!   try-columns-then-rows protocol with checksum rebuild (paper §4.3).
//! * [`section`] — the composable guarded-GEMM pipeline: [`GuardedSection`]
//!   strings encoded GEMMs, exit-and-re-encode steps, fault-hook taps,
//!   delayed detection points, and exact-replay refinement into reusable
//!   protection sections; [`ForwardCtx`] threads the per-execution state
//!   (mask, toggles, hook, report) through sequential and batched paths.
//! * [`policy`] — [`ProtectionPolicy`]: single owner of the per-section
//!   frequency gates (paper §4.5), handing out per-execution
//!   [`attention::SectionToggles`].
//! * [`attention`] — the three protection sections `S_AS`, `S_CL`, `S_O`
//!   with checksum passing across the six attention GEMMs (paper §4.4,
//!   Fig 5), built on [`section`], including fault-injection hooks for
//!   campaigns.
//! * [`adaptive`] — Poisson reliability model, fault coverage (FC), fault
//!   coverage efficiency (FCE), and the greedy detection-frequency
//!   optimizer of paper Algorithm 1.
//!
//! ## Quick start
//!
//! ```
//! use attn_tensor::rng::TensorRng;
//! use attnchecker::attention::{AttentionWeights, ProtectedAttention};
//! use attnchecker::config::ProtectionConfig;
//! use attnchecker::report::AbftReport;
//!
//! let mut rng = TensorRng::seed_from(0);
//! let (seq, hidden, heads) = (16, 32, 4);
//! let weights = AttentionWeights::random(hidden, heads, &mut rng);
//! let attn = ProtectedAttention::new(weights, ProtectionConfig::full());
//! let x = rng.normal_matrix(seq, hidden, 0.5);
//! let mut report = AbftReport::default();
//! let out = attn.forward_simple(&x, &mut report);
//! assert_eq!(out.output.rows(), seq);
//! assert_eq!(out.output.cols(), hidden);
//! assert!(report.is_quiet()); // fault-free run: nothing detected
//! ```

pub mod adaptive;
pub mod attention;
pub mod batched;
pub mod checked;
pub mod checksum;
pub mod config;
pub mod decode;
pub mod detect;
pub mod eec;
pub mod policy;
pub mod report;
pub mod section;

pub use checked::CheckedMatrix;
pub use config::{AbftConfig, FrequencyGate, ProtectionConfig, Strategy};
pub use decode::{AttnKvCache, ColdKvCache, KV_BLOCK_ROWS};
pub use eec::{eec_correct_vector, VectorVerdict};
pub use policy::ProtectionPolicy;
pub use report::AbftReport;
pub use section::{ForwardCtx, GuardedSection};
