//! Checksum-augmented matrices with fused update (paper §4.6).
//!
//! A [`CheckedMatrix`] *physically* appends its checksum rows/columns to the
//! data buffer:
//!
//! ```text
//!                cols      2 (row cs)
//!            ┌─────────┬────────┐
//!    rows    │  data   │ A·v1 A·v2 │
//!            ├─────────┼────────┤
//!    2       │ v1ᵀA    │ corner │   (col cs)
//!  (col cs)  │ v2ᵀA    │        │
//!            └─────────┴────────┘
//! ```
//!
//! Because checksums live inside the operand, a *single* GEMM over the
//! augmented buffers updates data and checksums together — the paper's
//! "pack the checksum with the operand matrix such that the checksum can be
//! updated together with the original operation". The alternative
//! [`Strategy::Separate`] path performs the same mathematics as four
//! independent products plus assembly copies, reproducing the kernel-launch-
//! and-traffic-heavy baseline of Fig 8.

use crate::checksum::{
    col_checksums, col_checksums_naive, row_checksums, row_checksums_naive, weight,
};
use crate::config::Strategy;
use attn_tensor::gemm;
use attn_tensor::Matrix;

/// A dense matrix whose buffer physically carries dual checksums.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedMatrix {
    /// Logical (data) rows.
    rows: usize,
    /// Logical (data) columns.
    cols: usize,
    /// Two extra buffer rows hold `v1ᵀA` / `v2ᵀA`.
    has_col_cs: bool,
    /// Two extra buffer columns hold `A·v1` / `A·v2`.
    has_row_cs: bool,
    /// Physical storage, `(rows + 2·col_cs) × (cols + 2·row_cs)`.
    buf: Matrix,
}

impl CheckedMatrix {
    /// Wrap a plain matrix with no checksums.
    pub fn from_plain(data: &Matrix) -> Self {
        Self::from_plain_owned(data.clone()) // attn-lint: allow(hot-path-alloc-reach) — constructor: wrapping a plain matrix owns its buffer by contract
    }

    /// Wrap an owned plain matrix with no checksums (no copy).
    pub fn from_plain_owned(data: Matrix) -> Self {
        Self {
            rows: data.rows(),
            cols: data.cols(),
            has_col_cs: false,
            has_row_cs: false,
            buf: data,
        }
    }

    /// Assemble a checked matrix from an externally produced augmented
    /// buffer. The decode path runs GEMMs over paged KV caches
    /// (`attn_tensor::PagedKv`) and builds the product buffer directly,
    /// so it cannot go through the owned-operand constructors above.
    pub(crate) fn from_augmented(
        rows: usize,
        cols: usize,
        has_col_cs: bool,
        has_row_cs: bool,
        buf: Matrix,
    ) -> Self {
        debug_assert_eq!(buf.rows(), rows + if has_col_cs { 2 } else { 0 });
        debug_assert_eq!(buf.cols(), cols + if has_row_cs { 2 } else { 0 });
        Self {
            rows,
            cols,
            has_col_cs,
            has_row_cs,
            buf,
        }
    }

    /// Encode column checksums (two appended rows).
    pub fn encode_cols(data: &Matrix, strategy: Strategy) -> Self {
        let cs = match strategy {
            Strategy::Fused => col_checksums(data),
            Strategy::Separate => col_checksums_naive(data),
        };
        Self {
            rows: data.rows(),
            cols: data.cols(),
            has_col_cs: true,
            has_row_cs: false,
            buf: data.vstack(&cs),
        }
    }

    /// Encode row checksums (two appended columns).
    pub fn encode_rows(data: &Matrix, strategy: Strategy) -> Self {
        let cs = match strategy {
            Strategy::Fused => row_checksums(data),
            Strategy::Separate => row_checksums_naive(data),
        };
        Self {
            rows: data.rows(),
            cols: data.cols(),
            has_col_cs: false,
            has_row_cs: true,
            buf: data.hstack(&cs),
        }
    }

    /// Encode both sides (columns, rows, and the consistency corner).
    pub fn encode_both(data: &Matrix, strategy: Strategy) -> Self {
        let with_rows = Self::encode_rows(data, strategy);
        // Column checksums of the row-augmented buffer also cover the
        // checksum columns, producing the 2×2 corner automatically.
        let cs = match strategy {
            Strategy::Fused => col_checksums(&with_rows.buf),
            Strategy::Separate => col_checksums_naive(&with_rows.buf),
        };
        Self {
            rows: data.rows(),
            cols: data.cols(),
            has_col_cs: true,
            has_row_cs: true,
            buf: with_rows.buf.vstack(&cs),
        }
    }

    /// Logical rows of the protected matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical columns of the protected matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether column checksums are present.
    #[inline]
    pub fn has_col_checksums(&self) -> bool {
        self.has_col_cs
    }

    /// Whether row checksums are present.
    #[inline]
    pub fn has_row_checksums(&self) -> bool {
        self.has_row_cs
    }

    /// Physical buffer (data + checksum borders).
    #[inline]
    pub fn buf(&self) -> &Matrix {
        &self.buf
    }

    /// Mutable physical buffer. Campaign code uses this to strike faults in
    /// the checksum regions as well as the data region.
    #[inline]
    pub fn buf_mut(&mut self) -> &mut Matrix {
        &mut self.buf
    }

    /// Logical element read.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.buf[(r, c)]
    }

    /// Logical element write (checksums intentionally untouched — this is
    /// how campaigns model a computation fault).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.buf[(r, c)] = v;
    }

    /// Copy of the logical data region.
    pub fn logical(&self) -> Matrix {
        self.buf.submatrix(0, self.rows, 0, self.cols)
    }

    /// Stored column checksums as a `2 × cols` matrix.
    ///
    /// # Panics
    /// Panics when column checksums are absent.
    pub fn stored_col_checksums(&self) -> Matrix {
        assert!(self.has_col_cs, "no column checksums");
        self.buf.submatrix(self.rows, self.rows + 2, 0, self.cols)
    }

    /// Stored row checksums as a `rows × 2` matrix.
    ///
    /// # Panics
    /// Panics when row checksums are absent.
    pub fn stored_row_checksums(&self) -> Matrix {
        assert!(self.has_row_cs, "no row checksums");
        self.buf.submatrix(0, self.rows, self.cols, self.cols + 2)
    }

    /// Stored `(checksum, weighted checksum)` for logical column `c`.
    #[inline]
    pub fn col_checksum(&self, c: usize) -> (f32, f32) {
        debug_assert!(self.has_col_cs);
        (self.buf[(self.rows, c)], self.buf[(self.rows + 1, c)])
    }

    /// Stored `(checksum, weighted checksum)` for logical row `r`.
    #[inline]
    pub fn row_checksum(&self, r: usize) -> (f32, f32) {
        debug_assert!(self.has_row_cs);
        (self.buf[(r, self.cols)], self.buf[(r, self.cols + 1)])
    }

    /// Overwrite the stored checksums of column `c`.
    #[inline]
    pub fn set_col_checksum(&mut self, c: usize, cs: (f32, f32)) {
        debug_assert!(self.has_col_cs);
        self.buf[(self.rows, c)] = cs.0;
        self.buf[(self.rows + 1, c)] = cs.1;
    }

    /// Overwrite the stored checksums of row `r`.
    #[inline]
    pub fn set_row_checksum(&mut self, r: usize, cs: (f32, f32)) {
        debug_assert!(self.has_row_cs);
        self.buf[(r, self.cols)] = cs.0;
        self.buf[(r, self.cols + 1)] = cs.1;
    }

    /// Logical column `c` copied into a vector (data region only).
    pub fn logical_col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.buf[(r, c)]).collect()
    }

    /// Logical row `r` as a slice (data region only).
    pub fn logical_row(&self, r: usize) -> &[f32] {
        &self.buf.row(r)[..self.cols]
    }

    /// Fused product `C = A · B` over the augmented buffers.
    ///
    /// Checksum flags compose: `A`'s column checksums and `B`'s row
    /// checksums ride through to `C`. `A` must not carry row checksums and
    /// `B` must not carry column checksums (those borders would corrupt the
    /// product's inner dimension).
    ///
    /// # Panics
    /// Panics on invalid checksum layouts or dimension mismatch.
    pub fn matmul(&self, other: &CheckedMatrix) -> CheckedMatrix {
        assert!(
            !self.has_row_cs,
            "matmul: left operand must not carry row checksums"
        );
        assert!(
            !other.has_col_cs,
            "matmul: right operand must not carry column checksums"
        );
        assert_eq!(self.cols, other.rows, "matmul: inner dimension");
        let buf = gemm::matmul(&self.buf, &other.buf);
        CheckedMatrix {
            rows: self.rows,
            cols: other.cols,
            has_col_cs: self.has_col_cs,
            has_row_cs: other.has_row_cs,
            buf,
        }
    }

    /// Fused product `C = A · Bᵀ` over the augmented buffers.
    ///
    /// `B`'s *column* checksums become `C`'s row checksums under the
    /// transpose — this is exactly how `AS = Q·Kᵀ` acquires both borders in
    /// the `S_AS` section from column-encoded `Q` and `K`.
    ///
    /// # Panics
    /// Panics on invalid checksum layouts or dimension mismatch.
    pub fn matmul_nt(&self, other: &CheckedMatrix) -> CheckedMatrix {
        assert!(
            !self.has_row_cs,
            "matmul_nt: left operand must not carry row checksums"
        );
        assert!(
            !other.has_row_cs,
            "matmul_nt: right operand must not carry row checksums"
        );
        assert_eq!(self.cols, other.cols, "matmul_nt: inner dimension");
        let buf = gemm::matmul_nt(&self.buf, &other.buf);
        CheckedMatrix {
            rows: self.rows,
            cols: other.rows,
            has_col_cs: self.has_col_cs,
            has_row_cs: other.has_col_cs,
            buf,
        }
    }

    /// Plain-left product `A · B` over a borrowed plain matrix: the
    /// no-entry counterpart of [`Self::matmul_encode_cols`], used by
    /// inactive sections so the operand is never cloned into a wrap.
    /// `B`'s row checksums (if any) still ride through.
    ///
    /// # Panics
    /// Panics if `b` carries column checksums or on dimension mismatch.
    pub fn matmul_plain(a: &Matrix, b: &CheckedMatrix) -> CheckedMatrix {
        assert!(
            !b.has_col_cs,
            "matmul_plain: right operand must not carry column checksums"
        );
        assert_eq!(a.cols(), b.rows, "matmul_plain: inner dimension");
        let mut buf = Matrix::zeros(a.rows(), b.buf.cols());
        // attn-lint: allow(unguarded-gemm) — CheckedMatrix IS the checksum layer the guarded sections build on
        gemm::matmul_into(a.view(), b.buf.view(), buf.view_mut());
        CheckedMatrix {
            rows: a.rows(),
            cols: b.cols,
            has_col_cs: false,
            has_row_cs: b.has_row_cs,
            buf,
        }
    }

    /// Plain-right counterpart of [`Self::matmul_plain`]: `A · B` over a
    /// borrowed plain right operand (no wrap, no clone); `A`'s column
    /// checksums (if any) still ride through.
    ///
    /// # Panics
    /// Panics if `a` carries row checksums or on dimension mismatch.
    pub fn matmul_plain_rhs(a: &CheckedMatrix, b: &Matrix) -> CheckedMatrix {
        assert!(
            !a.has_row_cs,
            "matmul_plain_rhs: left operand must not carry row checksums"
        );
        assert_eq!(a.cols, b.rows(), "matmul_plain_rhs: inner dimension");
        let mut buf = Matrix::zeros(a.buf.rows(), b.cols());
        // attn-lint: allow(unguarded-gemm) — CheckedMatrix IS the checksum layer the guarded sections build on
        gemm::matmul_into(a.buf.view(), b.view(), buf.view_mut());
        CheckedMatrix {
            rows: a.rows,
            cols: b.cols(),
            has_col_cs: a.has_col_cs,
            has_row_cs: false,
            buf,
        }
    }

    /// Fused encode-and-multiply: the column-checksummed product
    /// `[A; v1ᵀA; v2ᵀA] · B` computed in one kernel pass over *plain* `a`.
    ///
    /// Bit-identical to `CheckedMatrix::encode_cols(a, Fused).matmul(b)` —
    /// the encoder block contract guarantees the checksum projections, and
    /// per-element independence guarantees the data region — but without
    /// the standalone encode sweep over `a` or the augmented-copy
    /// allocation: the projections accumulate inside the GEMM's packing
    /// pass (`attn_tensor::gemm::gemm_encode_cols_into`). `b`'s row
    /// checksums (if any) ride through as usual, corner included.
    ///
    /// # Panics
    /// Panics if `b` carries column checksums or on dimension mismatch.
    pub fn matmul_encode_cols(a: &Matrix, b: &CheckedMatrix) -> CheckedMatrix {
        assert!(
            !b.has_col_cs,
            "matmul_encode_cols: right operand must not carry column checksums"
        );
        assert_eq!(a.cols(), b.rows, "matmul_encode_cols: inner dimension");
        let mut buf = Matrix::zeros(a.rows() + 2, b.buf.cols());
        // attn-lint: allow(unguarded-gemm) — CheckedMatrix IS the checksum layer the guarded sections build on
        gemm::gemm_encode_cols_into(a.view(), b.buf.view(), buf.view_mut());
        CheckedMatrix {
            rows: a.rows(),
            cols: b.cols,
            has_col_cs: true,
            has_row_cs: b.has_row_cs,
            buf,
        }
    }

    /// Fused encode-and-multiply, row side: the row-checksummed product
    /// `A · [B | B·v1 | B·v2]` computed in one kernel pass over *plain*
    /// `b`. Bit-identical to `a.matmul(&CheckedMatrix::encode_rows(b,
    /// Fused))` without the standalone encode sweep over `b`. `a`'s column
    /// checksums (if any) ride through, corner included.
    ///
    /// # Panics
    /// Panics if `a` carries row checksums or on dimension mismatch.
    pub fn matmul_encode_rows(a: &CheckedMatrix, b: &Matrix) -> CheckedMatrix {
        assert!(
            !a.has_row_cs,
            "matmul_encode_rows: left operand must not carry row checksums"
        );
        assert_eq!(a.cols, b.rows(), "matmul_encode_rows: inner dimension");
        let mut buf = Matrix::zeros(a.buf.rows(), b.cols() + 2);
        // attn-lint: allow(unguarded-gemm) — CheckedMatrix IS the checksum layer the guarded sections build on
        gemm::gemm_encode_rows_into(a.buf.view(), b.view(), buf.view_mut());
        CheckedMatrix {
            rows: a.rows,
            cols: b.cols(),
            has_col_cs: a.has_col_cs,
            has_row_cs: true,
            buf,
        }
    }

    /// Separate-pass product (the Fig 8 "Non-OPT" baseline): data and each
    /// checksum border are produced by independent products, then copied
    /// into the augmented layout. Mathematically identical to [`Self::matmul`],
    /// but with the extra kernel launches, temporaries, and memory traffic
    /// of an unfused implementation.
    pub fn matmul_separate(&self, other: &CheckedMatrix) -> CheckedMatrix {
        assert!(!self.has_row_cs && !other.has_col_cs);
        assert_eq!(self.cols, other.rows, "matmul_separate: inner dimension");
        let a_data = self.logical();
        let b_data = other.logical();
        // Kernel 1: the data product.
        let c_data = gemm::matmul(&a_data, &b_data);
        let mut out = CheckedMatrix {
            rows: self.rows,
            cols: other.cols,
            has_col_cs: self.has_col_cs,
            has_row_cs: other.has_row_cs,
            buf: Matrix::zeros(
                self.rows + if self.has_col_cs { 2 } else { 0 },
                other.cols + if other.has_row_cs { 2 } else { 0 },
            ),
        };
        for r in 0..c_data.rows() {
            out.buf.row_mut(r)[..c_data.cols()].copy_from_slice(c_data.row(r));
        }
        // Kernel 2: column-checksum update.
        if self.has_col_cs {
            let cc = gemm::matmul(&self.stored_col_checksums(), &b_data);
            for i in 0..2 {
                out.buf.row_mut(self.rows + i)[..other.cols].copy_from_slice(cc.row(i));
            }
        }
        // Kernel 3: row-checksum update.
        if other.has_row_cs {
            let rc = gemm::matmul(&a_data, &other.stored_row_checksums());
            for r in 0..self.rows {
                out.buf.row_mut(r)[other.cols..].copy_from_slice(rc.row(r));
            }
        }
        // Kernel 4: the consistency corner.
        if self.has_col_cs && other.has_row_cs {
            let corner = gemm::matmul(&self.stored_col_checksums(), &other.stored_row_checksums());
            for i in 0..2 {
                out.buf.row_mut(self.rows + i)[other.cols..].copy_from_slice(corner.row(i));
            }
        }
        out
    }

    /// Separate-pass variant of [`Self::matmul_nt`].
    pub fn matmul_nt_separate(&self, other: &CheckedMatrix) -> CheckedMatrix {
        assert!(!self.has_row_cs && !other.has_row_cs);
        assert_eq!(self.cols, other.cols);
        let a_data = self.logical();
        let b_data = other.logical();
        let c_data = gemm::matmul_nt(&a_data, &b_data);
        let mut out = CheckedMatrix {
            rows: self.rows,
            cols: other.rows,
            has_col_cs: self.has_col_cs,
            has_row_cs: other.has_col_cs,
            buf: Matrix::zeros(
                self.rows + if self.has_col_cs { 2 } else { 0 },
                other.rows + if other.has_col_cs { 2 } else { 0 },
            ),
        };
        for r in 0..c_data.rows() {
            out.buf.row_mut(r)[..c_data.cols()].copy_from_slice(c_data.row(r));
        }
        if self.has_col_cs {
            let cc = gemm::matmul_nt(&self.stored_col_checksums(), &b_data);
            for i in 0..2 {
                out.buf.row_mut(self.rows + i)[..other.rows].copy_from_slice(cc.row(i));
            }
        }
        if other.has_col_cs {
            let rc = gemm::matmul_nt(&a_data, &other.stored_col_checksums());
            for r in 0..self.rows {
                out.buf.row_mut(r)[other.rows..].copy_from_slice(rc.row(r));
            }
        }
        if self.has_col_cs && other.has_col_cs {
            let corner =
                gemm::matmul_nt(&self.stored_col_checksums(), &other.stored_col_checksums());
            for i in 0..2 {
                out.buf.row_mut(self.rows + i)[other.rows..].copy_from_slice(corner.row(i));
            }
        }
        out
    }

    /// Scale the entire augmented buffer (data *and* checksums) by `s` —
    /// checksum linearity makes this exact, so `AS / √d_k` keeps protection.
    pub fn scale_inplace(&mut self, s: f32) {
        self.buf.scale_inplace(s);
    }

    /// Add a broadcast bias row to every logical row, adjusting the stored
    /// checksums so the invariant survives: the bias contributes `m·b` to
    /// the unweighted column checksum, `Σwᵢ·b` to the weighted one, and
    /// `(Σb, Σwⱼbⱼ)` to every row checksum.
    ///
    /// # Panics
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "add_bias: length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.buf.row_mut(r)[..self.cols].iter_mut().zip(bias) {
                *v += b;
            }
        }
        let m = self.rows;
        let sum_w: f32 = (0..m).map(weight).sum();
        if self.has_col_cs {
            for (c, &b) in bias.iter().enumerate() {
                self.buf[(m, c)] += m as f32 * b;
                self.buf[(m + 1, c)] += sum_w * b;
            }
        }
        if self.has_row_cs {
            let bias_sum: f32 = bias.iter().sum();
            let bias_wsum: f32 = bias.iter().enumerate().map(|(c, &b)| weight(c) * b).sum();
            for r in 0..m {
                self.buf[(r, self.cols)] += bias_sum;
                self.buf[(r, self.cols + 1)] += bias_wsum;
            }
            if self.has_col_cs {
                // Corner: v_iᵀ·(1·bᵀ)·v_j = (Σv_i)(bᵀv_j).
                self.buf[(m, self.cols)] += m as f32 * bias_sum;
                self.buf[(m, self.cols + 1)] += m as f32 * bias_wsum;
                self.buf[(m + 1, self.cols)] += sum_w * bias_sum;
                self.buf[(m + 1, self.cols + 1)] += sum_w * bias_wsum;
            }
        }
    }

    /// Rebuild all stored checksums from the (presumed-correct) data region.
    pub fn recompute_checksums(&mut self) {
        let data = self.logical();
        if self.has_row_cs {
            let rc = row_checksums(&data);
            for r in 0..self.rows {
                self.buf[(r, self.cols)] = rc[(r, 0)];
                self.buf[(r, self.cols + 1)] = rc[(r, 1)];
            }
        }
        if self.has_col_cs {
            // Cover the row-checksum columns too so the corner stays
            // consistent.
            let upper = self.buf.submatrix(0, self.rows, 0, self.buf.cols());
            let cc = col_checksums(&upper);
            for c in 0..self.buf.cols() {
                self.buf[(self.rows, c)] = cc[(0, c)];
                self.buf[(self.rows + 1, c)] = cc[(1, c)];
            }
        }
    }

    /// Rebuild the stored checksums of a single logical column from data.
    pub fn recompute_col_checksum(&mut self, c: usize) {
        debug_assert!(self.has_col_cs);
        let mut s = 0.0f32;
        let mut ws = 0.0f32;
        for r in 0..self.rows {
            let v = self.buf[(r, c)];
            s += v;
            ws += weight(r) * v;
        }
        self.buf[(self.rows, c)] = s;
        self.buf[(self.rows + 1, c)] = ws;
    }

    /// Rebuild the stored checksums of a single logical row from data.
    pub fn recompute_row_checksum(&mut self, r: usize) {
        debug_assert!(self.has_row_cs);
        let mut s = 0.0f32;
        let mut ws = 0.0f32;
        for c in 0..self.cols {
            let v = self.buf[(r, c)];
            s += v;
            ws += weight(c) * v;
        }
        self.buf[(r, self.cols)] = s;
        self.buf[(r, self.cols + 1)] = ws;
    }

    /// Slice logical columns `[start, end)` keeping column checksums (used
    /// to split `Q`/`K` into per-head blocks — column checksums restrict to
    /// column ranges exactly).
    ///
    /// # Panics
    /// Panics when row checksums are present (they do not survive column
    /// slicing) or the range is invalid.
    pub fn slice_cols(&self, start: usize, end: usize) -> CheckedMatrix {
        assert!(
            !self.has_row_cs,
            "slice_cols: row checksums cannot be sliced"
        );
        assert!(start <= end && end <= self.cols);
        let phys_rows = self.buf.rows();
        CheckedMatrix {
            rows: self.rows,
            cols: end - start,
            has_col_cs: self.has_col_cs,
            has_row_cs: false,
            buf: self.buf.submatrix(0, phys_rows, start, end),
        }
    }

    /// Drop row checksums, keeping column checksums (used when the per-head
    /// `CL` blocks are merged: only column checksums ride into `S_O`).
    pub fn drop_row_checksums(&self) -> CheckedMatrix {
        if !self.has_row_cs {
            return self.clone(); // attn-lint: allow(hot-path-alloc-reach) — section-boundary reshape, not per-token decode work; ws_allocs tests pin the steady state
        }
        let phys_rows = self.buf.rows();
        CheckedMatrix {
            rows: self.rows,
            cols: self.cols,
            has_col_cs: self.has_col_cs,
            has_row_cs: false,
            buf: self.buf.submatrix(0, phys_rows, 0, self.cols),
        }
    }

    /// Horizontally concatenate column-checksummed blocks (per-head `CL`
    /// blocks back into the full context layer).
    ///
    /// # Panics
    /// Panics if blocks disagree on rows/flags or any carries row checksums.
    pub fn concat_cols(blocks: &[CheckedMatrix]) -> CheckedMatrix {
        assert!(!blocks.is_empty());
        let rows = blocks[0].rows;
        let has_col_cs = blocks[0].has_col_cs;
        let mut buf = blocks[0].buf.clone(); // attn-lint: allow(hot-path-alloc-reach) — concat constructs the merged matrix at a section boundary, not per-token
        for b in &blocks[1..] {
            assert_eq!(b.rows, rows, "concat_cols: row mismatch");
            assert_eq!(b.has_col_cs, has_col_cs, "concat_cols: flag mismatch");
            assert!(!b.has_row_cs, "concat_cols: row checksums present");
            buf = buf.hstack(&b.buf);
        }
        assert!(!blocks[0].has_row_cs);
        CheckedMatrix {
            rows,
            cols: blocks.iter().map(|b| b.cols).sum(),
            has_col_cs,
            has_row_cs: false,
            buf,
        }
    }

    /// Verify every stored checksum against a recomputation; returns the
    /// maximum absolute discrepancy (0 for a perfectly consistent matrix).
    /// Intended for tests and invariant assertions, not the hot path.
    pub fn max_checksum_discrepancy(&self) -> f32 {
        let mut worst = 0.0f32;
        if self.has_col_cs {
            for c in 0..self.cols {
                let col = self.logical_col(c);
                let (s, ws, _) = crate::checksum::vector_sums(&col);
                let (cs, wcs) = self.col_checksum(c);
                worst = worst.max((cs - s).abs()).max((wcs - ws).abs());
            }
        }
        if self.has_row_cs {
            for r in 0..self.rows {
                let (s, ws, _) = crate::checksum::vector_sums(self.logical_row(r));
                let (cs, wcs) = self.row_checksum(r);
                worst = worst.max((cs - s).abs()).max((wcs - ws).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::rng::TensorRng;

    fn rand(rng: &mut TensorRng, r: usize, c: usize) -> Matrix {
        rng.normal_matrix(r, c, 1.0)
    }

    #[test]
    fn encode_cols_layout() {
        let mut rng = TensorRng::seed_from(1);
        let a = rand(&mut rng, 5, 4);
        let ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        assert_eq!((ca.rows(), ca.cols()), (5, 4));
        assert_eq!((ca.buf().rows(), ca.buf().cols()), (7, 4));
        assert_eq!(ca.logical(), a);
        assert!(ca.max_checksum_discrepancy() < 1e-4);
    }

    #[test]
    fn encode_both_has_consistent_corner() {
        let mut rng = TensorRng::seed_from(2);
        let a = rand(&mut rng, 6, 5);
        let ca = CheckedMatrix::encode_both(&a, Strategy::Fused);
        assert_eq!((ca.buf().rows(), ca.buf().cols()), (8, 7));
        assert!(ca.max_checksum_discrepancy() < 1e-4);
        // Corner (0,0) = total sum of A.
        let total: f32 = a.data().iter().sum();
        assert!((ca.buf()[(6, 5)] - total).abs() < 1e-3);
    }

    #[test]
    fn fused_matmul_carries_checksums() {
        let mut rng = TensorRng::seed_from(3);
        let a = rand(&mut rng, 6, 8);
        let b = rand(&mut rng, 8, 5);
        let ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        let cb = CheckedMatrix::encode_rows(&b, Strategy::Fused);
        let cc = ca.matmul(&cb);
        assert!(cc.has_col_checksums() && cc.has_row_checksums());
        assert!(cc.logical().approx_eq(&gemm::matmul(&a, &b), 1e-4, 1e-4));
        assert!(
            cc.max_checksum_discrepancy() < 1e-2,
            "discrepancy {}",
            cc.max_checksum_discrepancy()
        );
    }

    #[test]
    fn fused_matmul_nt_transposes_checksum_side() {
        let mut rng = TensorRng::seed_from(4);
        let q = rand(&mut rng, 7, 4);
        let k = rand(&mut rng, 9, 4);
        let cq = CheckedMatrix::encode_cols(&q, Strategy::Fused);
        let ck = CheckedMatrix::encode_cols(&k, Strategy::Fused);
        let cs = cq.matmul_nt(&ck);
        assert_eq!((cs.rows(), cs.cols()), (7, 9));
        assert!(cs.has_col_checksums() && cs.has_row_checksums());
        assert!(cs.logical().approx_eq(&gemm::matmul_nt(&q, &k), 1e-4, 1e-4));
        assert!(cs.max_checksum_discrepancy() < 1e-2);
    }

    #[test]
    fn separate_matmul_matches_fused() {
        let mut rng = TensorRng::seed_from(5);
        let a = rand(&mut rng, 6, 8);
        let b = rand(&mut rng, 8, 5);
        let ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        let cb = CheckedMatrix::encode_rows(&b, Strategy::Fused);
        let fused = ca.matmul(&cb);
        let sep = ca.matmul_separate(&cb);
        assert!(fused.buf().approx_eq(sep.buf(), 1e-4, 1e-4));
    }

    #[test]
    fn separate_matmul_nt_matches_fused() {
        let mut rng = TensorRng::seed_from(6);
        let q = rand(&mut rng, 5, 4);
        let k = rand(&mut rng, 6, 4);
        let cq = CheckedMatrix::encode_cols(&q, Strategy::Fused);
        let ck = CheckedMatrix::encode_cols(&k, Strategy::Fused);
        assert!(cq
            .matmul_nt(&ck)
            .buf()
            .approx_eq(cq.matmul_nt_separate(&ck).buf(), 1e-4, 1e-4));
    }

    #[test]
    fn fused_encode_cols_is_bit_identical_to_encode_then_gemm() {
        let mut rng = TensorRng::seed_from(31);
        // Sizes straddling the MC row-block and KC k-block edges, plus a
        // row-checksummed right operand (corner case included).
        for &(m, k, n) in &[(1, 1, 1), (6, 8, 5), (70, 150, 9), (130, 260, 33)] {
            let a = rand(&mut rng, m, k);
            let b = rand(&mut rng, k, n);
            let cb = CheckedMatrix::encode_rows(&b, Strategy::Fused);
            for rhs in [CheckedMatrix::from_plain(&b), cb] {
                let fused = CheckedMatrix::matmul_encode_cols(&a, &rhs);
                let staged = CheckedMatrix::encode_cols(&a, Strategy::Fused).matmul(&rhs);
                assert_eq!(fused.buf(), staged.buf(), "{m}x{k}x{n}");
                assert_eq!(fused.has_row_checksums(), staged.has_row_checksums());
                assert!(fused.has_col_checksums());
            }
        }
    }

    #[test]
    fn fused_encode_rows_is_bit_identical_to_encode_then_gemm() {
        let mut rng = TensorRng::seed_from(37);
        for &(m, k, n) in &[(1, 1, 1), (5, 9, 6), (9, 140, 80), (33, 70, 130)] {
            let a = rand(&mut rng, m, k);
            let b = rand(&mut rng, k, n);
            let ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
            for lhs in [CheckedMatrix::from_plain(&a), ca] {
                let fused = CheckedMatrix::matmul_encode_rows(&lhs, &b);
                let staged = lhs.matmul(&CheckedMatrix::encode_rows(&b, Strategy::Fused));
                assert_eq!(fused.buf(), staged.buf(), "{m}x{k}x{n}");
                assert_eq!(fused.has_col_checksums(), staged.has_col_checksums());
                assert!(fused.has_row_checksums());
            }
        }
    }

    #[test]
    fn from_plain_owned_avoids_reencoding() {
        let mut rng = TensorRng::seed_from(41);
        let a = rand(&mut rng, 3, 4);
        let m = CheckedMatrix::from_plain_owned(a.clone());
        assert_eq!(m.logical(), a);
        assert!(!m.has_col_checksums() && !m.has_row_checksums());
    }

    #[test]
    fn scale_preserves_invariant() {
        let mut rng = TensorRng::seed_from(7);
        let a = rand(&mut rng, 6, 6);
        let mut ca = CheckedMatrix::encode_both(&a, Strategy::Fused);
        ca.scale_inplace(0.125);
        assert!(ca.max_checksum_discrepancy() < 1e-4);
        assert!(ca.logical().approx_eq(&a.scaled(0.125), 1e-6, 1e-6));
    }

    #[test]
    fn add_bias_preserves_invariant_all_layouts() {
        let mut rng = TensorRng::seed_from(8);
        let a = rand(&mut rng, 5, 4);
        let bias = vec![0.5, -1.0, 2.0, 0.25];
        for enc in [
            CheckedMatrix::encode_cols(&a, Strategy::Fused),
            CheckedMatrix::encode_rows(&a, Strategy::Fused),
            CheckedMatrix::encode_both(&a, Strategy::Fused),
        ] {
            let mut m = enc;
            m.add_bias(&bias);
            assert!(
                m.max_checksum_discrepancy() < 1e-3,
                "discrepancy {}",
                m.max_checksum_discrepancy()
            );
            for r in 0..5 {
                for c in 0..4 {
                    assert!((m.get(r, c) - (a[(r, c)] + bias[c])).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn slice_cols_keeps_per_column_checksums() {
        let mut rng = TensorRng::seed_from(9);
        let a = rand(&mut rng, 6, 8);
        let ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        let head = ca.slice_cols(2, 6);
        assert_eq!((head.rows(), head.cols()), (6, 4));
        assert!(head.max_checksum_discrepancy() < 1e-4);
        assert_eq!(head.logical(), a.submatrix(0, 6, 2, 6));
    }

    #[test]
    fn concat_cols_rebuilds_full_matrix() {
        let mut rng = TensorRng::seed_from(10);
        let a = rand(&mut rng, 4, 6);
        let ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        let left = ca.slice_cols(0, 3);
        let right = ca.slice_cols(3, 6);
        let merged = CheckedMatrix::concat_cols(&[left, right]);
        assert_eq!(merged.buf(), ca.buf());
    }

    #[test]
    fn drop_row_checksums_keeps_col_side() {
        let mut rng = TensorRng::seed_from(11);
        let a = rand(&mut rng, 4, 4);
        let both = CheckedMatrix::encode_both(&a, Strategy::Fused);
        let colonly = both.drop_row_checksums();
        assert!(colonly.has_col_checksums());
        assert!(!colonly.has_row_checksums());
        assert!(colonly.max_checksum_discrepancy() < 1e-4);
    }

    #[test]
    fn recompute_checksums_heals_corruption() {
        let mut rng = TensorRng::seed_from(12);
        let a = rand(&mut rng, 5, 5);
        let mut ca = CheckedMatrix::encode_both(&a, Strategy::Fused);
        // Corrupt a checksum cell directly.
        let rows = ca.rows();
        ca.buf_mut()[(rows, 2)] = f32::NAN;
        ca.recompute_checksums();
        assert!(ca.max_checksum_discrepancy() < 1e-4);
    }

    #[test]
    fn data_fault_breaks_checksum_relation() {
        let mut rng = TensorRng::seed_from(13);
        let a = rand(&mut rng, 6, 6);
        let mut ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        ca.set(3, 2, f32::INFINITY);
        let d = ca.max_checksum_discrepancy();
        assert!(d.is_nan() || d >= 1e-2, "fault must break the invariant");
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_row_checksummed_left() {
        let a = Matrix::zeros(3, 3);
        let ca = CheckedMatrix::encode_rows(&a, Strategy::Fused);
        let cb = CheckedMatrix::from_plain(&a);
        let _ = ca.matmul(&cb);
    }

    #[test]
    fn chained_products_keep_checksums_consistent() {
        // X(col) · W1 → ·W2 → still consistent: the checksum-passing
        // mechanism of §4.4 across a whole section.
        let mut rng = TensorRng::seed_from(14);
        let x = rand(&mut rng, 6, 8);
        let w1 = rand(&mut rng, 8, 8);
        let w2 = rand(&mut rng, 8, 4);
        let cx = CheckedMatrix::encode_cols(&x, Strategy::Fused);
        let c1 = cx.matmul(&CheckedMatrix::from_plain(&w1));
        let c2 = c1.matmul(&CheckedMatrix::from_plain(&w2));
        assert!(c2.has_col_checksums());
        assert!(c2.max_checksum_discrepancy() < 5e-2);
        let expect = gemm::matmul(&gemm::matmul(&x, &w1), &w2);
        assert!(c2.logical().approx_eq(&expect, 1e-4, 1e-4));
    }
}
