//! Per-example activation tapes.
//!
//! Historically every layer cached its forward activations as hidden
//! mutable state (`cache: Option<…>` fields), which welded forward and
//! backward to a single in-flight example and kept the training hot path
//! sequential. The tape API inverts that: `forward_tape` takes the layer
//! by `&self` and *returns* the activation record, `backward_tape`
//! consumes it and writes parameter gradients into a detached
//! [`crate::param::Grads`] buffer. A whole batch can then run forward +
//! backward concurrently — one tape, one report, one gradient buffer per
//! item — with the per-item results reduced in fixed batch order so the
//! step is bit-identical to the sequential schedule at any thread count.
//!
//! The legacy `forward`/`backward` methods survive as thin wrappers that
//! stash the tape on the layer, so single-example callers and the layer
//! test suites are unchanged.

use attn_tensor::ops::LayerNormCache;
use attn_tensor::Matrix;
use attnchecker::attention::AttnCache;
use std::time::Duration;

/// Activation record of one [`crate::ffn::FeedForward`] forward pass.
#[derive(Debug, Clone)]
pub struct FfnTape {
    /// Input to the expansion GEMM (`lin1`).
    pub x: Matrix,
    /// Pre-GELU activation (the expansion output), needed for the GELU
    /// backward.
    pub pre: Matrix,
    /// Post-GELU activation — the contraction GEMM's (`lin2`) input.
    pub act: Matrix,
}

/// Activation record of one [`crate::block::TransformerBlock`] forward.
#[derive(Debug, Clone)]
pub struct BlockTape {
    /// Attention sub-layer activations (post-correction when protected).
    pub attn: AttnCache,
    /// FFN sub-layer activations.
    pub ffn: FfnTape,
    /// Statistics of the norm attached to the attention sub-layer.
    pub ln1: LayerNormCache,
    /// Statistics of the norm attached to the FFN sub-layer.
    pub ln2: LayerNormCache,
    /// Wall time of the attention sub-layer in this forward.
    pub attn_time: Duration,
    /// Wall time of the FFN sub-layer in this forward.
    pub ffn_time: Duration,
}

/// Activation record of the classification head.
#[derive(Debug, Clone)]
pub struct HeadTape {
    /// Sequence length of the forwarded example.
    pub seq: usize,
    /// Row selected for classification (`[CLS]` or last token).
    pub select_row: usize,
    /// Post-tanh pooled vector (BERT family only).
    pub pooled: Option<Matrix>,
    /// Pooler input (BERT family only).
    pub pooler_x: Option<Matrix>,
    /// Classifier input.
    pub classifier_x: Matrix,
}

/// Full activation tape of one example's forward pass through
/// [`crate::model::TransformerModel`] — everything backward needs, and
/// nothing stored on the model itself.
#[derive(Debug, Clone)]
pub struct ExampleTape {
    /// The forwarded token sequence (the embedding's scatter indices).
    pub tokens: Vec<usize>,
    /// Embedding LayerNorm statistics (BERT family).
    pub emb_ln: Option<LayerNormCache>,
    /// Per-block activation records, input order.
    pub blocks: Vec<BlockTape>,
    /// Final LayerNorm statistics (GPT family).
    pub final_ln: Option<LayerNormCache>,
    /// Classification-head record.
    pub head: HeadTape,
    /// Wall time spent in attention sub-layers during this forward.
    pub attn_time: Duration,
    /// Wall time spent in FFN sub-layers during this forward.
    pub ffn_time: Duration,
}
