//! Miniature transformer classifiers: BERT, RoBERTa, GPT-2, GPT-Neo.
//!
//! These are architecture-faithful, CPU-scale stand-ins for the HuggingFace
//! models the paper fine-tunes on MRPC (§5.1):
//!
//! * **BERT / RoBERTa** — bidirectional post-LN encoder, embedding LN,
//!   `[CLS]`-pooled tanh head (RoBERTa differs in its padding-reserved
//!   position offset);
//! * **GPT-2** — causal pre-LN decoder with a final LN, last-token head;
//! * **GPT-Neo** — GPT-2 plus alternating global/local (banded) attention.
//!
//! Error-propagation behaviour (Table 2) and loss-NaN vulnerability
//! (Table 4) depend on the attention dataflow, softmax semantics, pooling
//! path, and optimizer dynamics — all preserved here — not on scale.

use crate::block::{BlockArch, TransformerBlock};
use crate::embedding::Embedding;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::param::{Grads, HasParams, Param};
use crate::tape::{ExampleTape, HeadTape};
use attn_fault::FaultKind;
use attn_tensor::guard::softmax_rows_checked;
use attn_tensor::ops::{causal_mask, local_causal_mask};
use attn_tensor::rng::TensorRng;
use attn_tensor::{Matrix, OpGuard};
use attnchecker::attention::{AttnOp, FaultSite, SectionToggles};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;
use attnchecker::section::{ForwardCtx, GuardedSection};
use std::time::Duration;

/// Which of the four studied architectures a model instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelArch {
    /// Bidirectional post-LN encoder with `[CLS]` pooling.
    Bert,
    /// BERT architecture with RoBERTa's position-offset convention.
    Roberta,
    /// Causal pre-LN decoder, last-token head.
    Gpt2,
    /// GPT-2 with alternating global/local attention layers.
    GptNeo,
}

/// Hyper-parameters of one model instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Display name (matches the paper's figures).
    pub name: String,
    /// Architecture family.
    pub arch: ModelArch,
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Maximum sequence length.
    pub max_seq: usize,
    /// FFN expansion factor.
    pub ffn_mult: usize,
    /// Local-attention window (GPT-Neo odd layers).
    pub local_window: usize,
    /// Output classes (2 for MRPC-style paraphrase detection).
    pub num_classes: usize,
}

impl ModelConfig {
    /// Smallest BERT (the paper's Bert-small bar in Fig 7).
    pub fn bert_small() -> Self {
        Self {
            name: "Bert-small".into(),
            arch: ModelArch::Bert,
            vocab: 256,
            hidden: 32,
            heads: 2,
            layers: 2,
            max_seq: 32,
            ffn_mult: 4,
            local_window: 8,
            num_classes: 2,
        }
    }

    /// Mid-size BERT (the paper's default Bert).
    pub fn bert_base() -> Self {
        Self {
            name: "Bert-base".into(),
            hidden: 64,
            heads: 4,
            ..Self::bert_small()
        }
    }

    /// Largest BERT variant.
    pub fn bert_large() -> Self {
        Self {
            name: "Bert-large".into(),
            hidden: 96,
            heads: 6,
            layers: 3,
            ..Self::bert_small()
        }
    }

    /// GPT-2-style causal decoder.
    pub fn gpt2() -> Self {
        Self {
            name: "GPT-2".into(),
            arch: ModelArch::Gpt2,
            hidden: 64,
            heads: 4,
            ..Self::bert_small()
        }
    }

    /// GPT-Neo-style decoder with alternating local attention.
    pub fn gpt_neo() -> Self {
        Self {
            name: "GPT-Neo".into(),
            arch: ModelArch::GptNeo,
            hidden: 64,
            heads: 4,
            ..Self::bert_small()
        }
    }

    /// RoBERTa-style encoder.
    pub fn roberta() -> Self {
        Self {
            name: "Roberta".into(),
            arch: ModelArch::Roberta,
            hidden: 64,
            heads: 4,
            ..Self::bert_small()
        }
    }

    /// The four models of the paper's main evaluation.
    pub fn paper_four() -> Vec<ModelConfig> {
        vec![
            Self::bert_base(),
            Self::gpt2(),
            Self::gpt_neo(),
            Self::roberta(),
        ]
    }

    /// The six models of Fig 7.
    pub fn paper_six() -> Vec<ModelConfig> {
        vec![
            Self::bert_small(),
            Self::bert_base(),
            Self::bert_large(),
            Self::gpt2(),
            Self::gpt_neo(),
            Self::roberta(),
        ]
    }

    /// Scale the configuration up for timing experiments: doubled width and
    /// sequence length so fixed ABFT costs amortise the way they do at the
    /// paper's model sizes (the campaign-sized configs above keep
    /// fault-injection runs fast instead).
    pub fn scaled_for_timing(mut self) -> Self {
        self.hidden *= 2;
        self.max_seq = 64;
        self.local_window = 16;
        self
    }
}

/// One planned fault injection inside a forward pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionSpec {
    /// Transformer block index to strike.
    pub layer: usize,
    /// Which GEMM output to strike.
    pub op: AttnOp,
    /// Head for per-head sites (`AS`, `CL`, `V`); ignored for `Q`/`K`/`O`.
    pub head: usize,
    /// Victim row (reduced modulo the matrix height).
    pub row: usize,
    /// Victim column (reduced modulo the matrix width).
    pub col: usize,
    /// Fault class.
    pub kind: FaultKind,
}

/// A full transformer classifier.
#[derive(Debug, Clone)]
pub struct TransformerModel {
    /// Hyper-parameters.
    pub config: ModelConfig,
    /// Input embeddings.
    pub embedding: Embedding,
    /// Embedding LayerNorm (BERT family).
    pub emb_ln: Option<LayerNorm>,
    /// Transformer blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final LayerNorm (GPT family).
    pub final_ln: Option<LayerNorm>,
    /// `[CLS]` pooler (BERT family).
    pub pooler: Option<Linear>,
    /// Classification head.
    pub classifier: Linear,
    /// Attention-forward wall time accumulated since the last reset
    /// (feeds the Fig 7 "attention mechanism" timing).
    pub attn_elapsed: Duration,
    /// FFN-forward wall time accumulated since the last reset (feeds the
    /// FFN-protection overhead column of the Fig 7 reproduction).
    pub ffn_elapsed: Duration,
    tape: Option<ExampleTape>,
}

impl TransformerModel {
    /// Build a model with the given protection policy on every attention
    /// layer.
    pub fn new(config: ModelConfig, protection: ProtectionConfig, rng: &mut TensorRng) -> Self {
        let is_bert = matches!(config.arch, ModelArch::Bert | ModelArch::Roberta);
        let arch = if is_bert {
            BlockArch::PostLn
        } else {
            BlockArch::PreLn
        };
        let pos_offset = if config.arch == ModelArch::Roberta {
            2
        } else {
            0
        };
        let embedding = Embedding::new(
            "emb",
            config.vocab,
            config.max_seq,
            config.hidden,
            pos_offset,
            rng,
        );
        let blocks = (0..config.layers)
            .map(|i| {
                TransformerBlock::new(
                    &format!("block{i}"),
                    config.hidden,
                    config.heads,
                    config.hidden * config.ffn_mult,
                    arch,
                    protection,
                    rng,
                )
            })
            .collect();
        let emb_ln = is_bert.then(|| LayerNorm::new("emb.ln", config.hidden, 1e-5));
        let final_ln = (!is_bert).then(|| LayerNorm::new("final.ln", config.hidden, 1e-5));
        let pooler = is_bert.then(|| Linear::new("pooler", config.hidden, config.hidden, rng));
        let classifier = Linear::new("classifier", config.hidden, config.num_classes, rng);
        Self {
            config,
            embedding,
            emb_ln,
            blocks,
            final_ln,
            pooler,
            classifier,
            attn_elapsed: Duration::ZERO,
            ffn_elapsed: Duration::ZERO,
            tape: None,
        }
    }

    /// Change the protection policy on every attention layer.
    pub fn set_protection(&mut self, protection: ProtectionConfig) {
        for b in &mut self.blocks {
            b.attn.protection = protection;
        }
    }

    /// Attention mask for block `layer` at sequence length `seq`.
    pub fn mask_for_layer(&self, layer: usize, seq: usize) -> Option<Matrix> {
        match self.config.arch {
            ModelArch::Bert | ModelArch::Roberta => None,
            ModelArch::Gpt2 => Some(causal_mask(seq)),
            ModelArch::GptNeo => {
                if layer.is_multiple_of(2) {
                    Some(causal_mask(seq))
                } else {
                    Some(local_causal_mask(seq, self.config.local_window))
                }
            }
        }
    }

    /// Stateless forward of one example; returns the `1 × num_classes`
    /// logits and the full activation tape.
    ///
    /// Takes the model by `&self`, so a whole batch can forward
    /// concurrently against shared parameters — each item owns its tape,
    /// report, and (optional) injection hook, mirroring the per-item
    /// isolation of `ProtectedAttention::forward_batch_with`.
    ///
    /// `toggles` selects which protection sections run this pass;
    /// `inject` optionally plants one fault at a specific pipeline site.
    pub fn forward_tape(
        &self,
        tokens: &[usize],
        toggles: SectionToggles,
        inject: Option<&InjectionSpec>,
        report: &mut AbftReport,
    ) -> (Matrix, ExampleTape) {
        let seq = tokens.len();
        let masks: Vec<Option<Matrix>> = (0..self.blocks.len())
            .map(|i| self.mask_for_layer(i, seq))
            .collect();

        let mut attn_time = Duration::ZERO;
        let mut ffn_time = Duration::ZERO;
        let mut block_tapes = Vec::with_capacity(self.blocks.len());

        // Blocks run their own op guards internally; this one covers the
        // model-level non-GEMM ops (embedding gather, outer LayerNorms).
        let protection = self
            .blocks
            .first()
            .map(|b| b.attn.protection)
            .unwrap_or_else(ProtectionConfig::off);
        let op_guard = GuardedSection::guard_step(&protection);

        let mut h = self.embedding.forward_checked(tokens, &op_guard);
        let emb_ln = self.emb_ln.as_ref().map(|ln| {
            let (y, cache) = ln.forward_tape_checked(&h, &op_guard);
            h = y;
            cache
        });
        for (i, block) in self.blocks.iter().enumerate() {
            let spec = inject.filter(|s| s.layer == i).copied();
            let mut fired = false;
            let mut hook_fn = move |site: FaultSite, m: &mut CheckedMatrix| {
                let Some(s) = spec else { return };
                if fired || site.op != s.op {
                    return;
                }
                if let Some(h) = site.head {
                    if h != s.head {
                        return;
                    }
                }
                fired = true;
                let r = s.row % m.rows();
                let c = s.col % m.cols();
                let old = m.get(r, c);
                m.set(r, c, s.kind.apply(old));
            };
            let mut ctx = ForwardCtx {
                mask: masks[i].as_ref(),
                toggles,
                hook: spec.is_some().then_some(&mut hook_fn as _),
                report: &mut *report,
            };
            let (y, tape) = block.forward_tape(&h, &mut ctx);
            h = y;
            attn_time += tape.attn_time;
            ffn_time += tape.ffn_time;
            block_tapes.push(tape);
        }
        let final_ln = self.final_ln.as_ref().map(|ln| {
            let (y, cache) = ln.forward_tape_checked(&h, &op_guard);
            h = y;
            cache
        });
        report.absorb_op_guard(op_guard.take_stats());

        let select_row = match self.config.arch {
            ModelArch::Bert | ModelArch::Roberta => 0,
            ModelArch::Gpt2 | ModelArch::GptNeo => seq - 1,
        };
        let hrow = h.submatrix(select_row, select_row + 1, 0, self.config.hidden);

        let (head_in, pooled, pooler_x) = if let Some(pooler) = &self.pooler {
            let (lin, px) = pooler.forward_tape(&hrow);
            let tanh = lin.map(|x| x.tanh());
            (tanh.clone(), Some(tanh), Some(px))
        } else {
            (hrow, None, None)
        };
        let (logits, classifier_x) = self.classifier.forward_tape(&head_in);
        let tape = ExampleTape {
            tokens: tokens.to_vec(),
            emb_ln,
            blocks: block_tapes,
            final_ln,
            head: HeadTape {
                seq,
                select_row,
                pooled,
                pooler_x,
                classifier_x,
            },
            attn_time,
            ffn_time,
        };
        (logits, tape)
    }

    /// Stateless backward of one example from the logits gradient over its
    /// activation tape; parameter gradients go into `grads`.
    pub fn backward_tape(&self, dlogits: &Matrix, tape: &ExampleTape, grads: &mut Grads) {
        self.backward_tape_checked(dlogits, tape, grads, &OpGuard::off());
    }

    /// Stateless backward with the non-GEMM ops guarded end-to-end
    /// (softmax Jacobian, LayerNorm backward, GELU derivative, residual
    /// gradient sums) under one `g` scope.
    pub fn backward_tape_checked(
        &self,
        dlogits: &Matrix,
        tape: &ExampleTape,
        grads: &mut Grads,
        g: &OpGuard,
    ) {
        let mut d = self
            .classifier
            .backward_tape(dlogits, &tape.head.classifier_x, grads);
        if let Some(pooler) = &self.pooler {
            let pooled = tape.head.pooled.as_ref().expect("pooler tape");
            // d(tanh(u)) = (1 - tanh²(u)) du
            d = d.zip(pooled, |g, t| g * (1.0 - t * t));
            let px = tape.head.pooler_x.as_ref().expect("pooler input tape");
            d = pooler.backward_tape(&d, px, grads);
        }
        let mut dh = Matrix::zeros(tape.head.seq, self.config.hidden);
        dh.row_mut(tape.head.select_row).copy_from_slice(d.row(0));

        if let Some(ln) = &self.final_ln {
            let cache = tape.final_ln.as_ref().expect("final LN tape");
            dh = ln.backward_tape_checked(&dh, cache, grads, g);
        }
        for (block, bt) in self.blocks.iter().zip(&tape.blocks).rev() {
            dh = block.backward_tape_checked(&dh, bt, grads, g);
        }
        if let Some(ln) = &self.emb_ln {
            let cache = tape.emb_ln.as_ref().expect("embedding LN tape");
            dh = ln.backward_tape_checked(&dh, cache, grads, g);
        }
        self.embedding.backward_tape(&dh, &tape.tokens, grads);
    }

    /// Forward one example; returns the `1 × num_classes` logits. The tape
    /// is stashed on the model for the matching [`Self::backward_example`],
    /// and the step timers accumulate — the sequential convenience wrapper
    /// around [`Self::forward_tape`].
    pub fn forward_example(
        &mut self,
        tokens: &[usize],
        toggles: SectionToggles,
        inject: Option<&InjectionSpec>,
        report: &mut AbftReport,
    ) -> Matrix {
        let (logits, tape) = self.forward_tape(tokens, toggles, inject, report);
        self.attn_elapsed += tape.attn_time;
        self.ffn_elapsed += tape.ffn_time;
        self.tape = Some(tape);
        logits
    }

    /// Backward one example from the logits gradient. Must directly follow
    /// the matching [`Self::forward_example`].
    ///
    /// # Panics
    /// Panics if no forward tape is pending.
    pub fn backward_example(&mut self, dlogits: &Matrix) {
        let tape = self
            .tape
            .take()
            .expect("backward_example before forward_example");
        let mut grads = Grads::new();
        self.backward_tape(dlogits, &tape, &mut grads);
        grads.merge_into(self);
    }

    /// Reset the attention/FFN time accumulators. The trainer no longer
    /// needs this — step timers come from per-item tapes — but sequential
    /// [`Self::forward_example`] callers still accumulate into the model
    /// fields and can reset them here.
    pub fn reset_step_timers(&mut self) {
        self.attn_elapsed = Duration::ZERO;
        self.ffn_elapsed = Duration::ZERO;
    }
}

impl HasParams for TransformerModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embedding.visit_params(f);
        if let Some(ln) = &mut self.emb_ln {
            ln.visit_params(f);
        }
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        if let Some(ln) = &mut self.final_ln {
            ln.visit_params(f);
        }
        if let Some(p) = &mut self.pooler {
            p.visit_params(f);
        }
        self.classifier.visit_params(f);
    }
}

/// Softmax cross-entropy for a `1 × C` logits row.
///
/// Returns `(loss, dlogits)`. NaN/INF logits produce a NaN loss — the
/// non-trainable-state signal of the paper's study.
pub fn cross_entropy(logits: &Matrix, label: usize) -> (f32, Matrix) {
    cross_entropy_checked(logits, label, &OpGuard::off())
}

/// Guarded softmax cross-entropy: the probability row is screened
/// (entries in `[0, 1]`, row sums to ~1) and healed by exact recompute
/// from the preserved logits on violation. NaN logits still surface a
/// NaN loss — propagation recomputes identically and is not a fault.
pub fn cross_entropy_checked(logits: &Matrix, label: usize, g: &OpGuard) -> (f32, Matrix) {
    assert_eq!(logits.rows(), 1);
    assert!(label < logits.cols());
    let p = softmax_rows_checked(logits, g);
    let loss = -(p[(0, label)].max(f32::MIN_POSITIVE)).ln();
    // If the row went NaN, surface NaN instead of the clamped value.
    let loss = if p.row(0).iter().any(|x| x.is_nan()) {
        f32::NAN
    } else {
        loss
    };
    let mut d = p;
    d[(0, label)] -= 1.0;
    (loss, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(config: ModelConfig) -> (TransformerModel, TensorRng) {
        let mut rng = TensorRng::seed_from(11);
        let m = TransformerModel::new(config, ProtectionConfig::off(), &mut rng);
        (m, rng)
    }

    #[test]
    fn forward_shapes_all_archs() {
        for cfg in ModelConfig::paper_six() {
            let (mut m, _) = tiny(cfg.clone());
            let tokens: Vec<usize> = (0..16).map(|i| i % cfg.vocab).collect();
            let mut report = AbftReport::default();
            let logits = m.forward_example(&tokens, SectionToggles::none(), None, &mut report);
            assert_eq!((logits.rows(), logits.cols()), (1, 2), "{}", cfg.name);
            assert!(logits.all_finite(), "{}", cfg.name);
        }
    }

    #[test]
    fn cross_entropy_math() {
        let logits = Matrix::from_vec(1, 2, vec![2.0, 0.0]);
        let (loss, d) = cross_entropy(&logits, 0);
        let p0 = (2.0f32).exp() / ((2.0f32).exp() + 1.0);
        assert!((loss + p0.ln()).abs() < 1e-5);
        assert!((d[(0, 0)] - (p0 - 1.0)).abs() < 1e-5);
        assert!((d[(0, 1)] - (1.0 - p0)).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_nan_logits_flag_non_trainable() {
        let logits = Matrix::from_vec(1, 2, vec![f32::NAN, 0.0]);
        let (loss, _) = cross_entropy(&logits, 0);
        assert!(loss.is_nan());
    }

    #[test]
    fn full_model_gradient_check_bert() {
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 1;
        let (mut m, _) = tiny(cfg);
        let tokens = vec![1usize, 5, 9, 3];
        let label = 1usize;
        let mut report = AbftReport::default();
        let logits = m.forward_example(&tokens, SectionToggles::none(), None, &mut report);
        let (_, dlogits) = cross_entropy(&logits, label);
        m.backward_example(&dlogits);

        // FD check on a handful of parameters spread across the model.
        let loss_fn = |mm: &TransformerModel| -> f32 {
            let mut c = mm.clone();
            let mut r = AbftReport::default();
            let lg = c.forward_example(&tokens, SectionToggles::none(), None, &mut r);
            cross_entropy(&lg, label).0
        };
        let eps = 1e-2;
        // Spot-check gradients on parameters spread across the model depth.
        let spots = [
            ("classifier.w", 0usize),
            ("block0.attn.wq", 1),
            ("pooler.w", 2),
        ];
        for (name, _) in spots {
            let mut grad_val = None;
            let mut pos = (0usize, 0usize);
            m.visit_params(&mut |p| {
                if p.name == name {
                    pos = (p.value.rows() / 2, p.value.cols() / 2);
                    grad_val = Some(p.grad[pos]);
                }
            });
            let analytic = grad_val.unwrap_or_else(|| panic!("param {name} not found"));
            let mut mp = m.clone();
            mp.visit_params(&mut |p| {
                if p.name == name {
                    p.value[pos] += eps;
                }
            });
            let mut mm = m.clone();
            mm.visit_params(&mut |p| {
                if p.name == name {
                    p.value[pos] -= eps;
                }
            });
            let fd = (loss_fn(&mp) - loss_fn(&mm)) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 5e-2,
                "{name}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gpt_neo_alternates_masks() {
        let (m, _) = tiny(ModelConfig::gpt_neo());
        let m0 = m.mask_for_layer(0, 16).unwrap();
        let m1 = m.mask_for_layer(1, 16).unwrap();
        assert_ne!(m0.data(), m1.data());
        // Layer 1 is local: position 15 cannot attend to position 0.
        assert!(m1[(15, 0)] < -1e8);
        assert_eq!(m0[(15, 0)], 0.0);
    }

    #[test]
    fn injection_spec_reaches_forward() {
        let (mut m, _) = tiny(ModelConfig::bert_base());
        let tokens: Vec<usize> = (0..16).collect();
        let spec = InjectionSpec {
            layer: 0,
            op: AttnOp::Q,
            head: 0,
            row: 3,
            col: 5,
            kind: FaultKind::NaN,
        };
        let mut report = AbftReport::default();
        let logits = m.forward_example(&tokens, SectionToggles::none(), Some(&spec), &mut report);
        // Unprotected NaN in Q propagates through two layers into the CLS
        // path and the logits.
        assert!(!logits.all_finite());
    }

    #[test]
    fn injection_with_protection_is_corrected() {
        let mut rng = TensorRng::seed_from(12);
        let mut m =
            TransformerModel::new(ModelConfig::bert_base(), ProtectionConfig::full(), &mut rng);
        let tokens: Vec<usize> = (0..16).collect();
        let spec = InjectionSpec {
            layer: 1,
            op: AttnOp::AS,
            head: 1,
            row: 2,
            col: 7,
            kind: FaultKind::Inf,
        };
        let mut report = AbftReport::default();
        let logits = m.forward_example(&tokens, SectionToggles::all(), Some(&spec), &mut report);
        assert!(logits.all_finite());
        assert!(report.correction_count() > 0);
        assert_eq!(report.unrecovered, 0);
    }

    #[test]
    fn ffn_injection_with_protection_is_corrected() {
        let mut rng = TensorRng::seed_from(13);
        let mut m =
            TransformerModel::new(ModelConfig::bert_base(), ProtectionConfig::full(), &mut rng);
        let tokens: Vec<usize> = (0..16).collect();
        for op in AttnOp::FFN {
            let spec = InjectionSpec {
                layer: 0,
                op,
                head: 0,
                row: 5,
                col: 9,
                kind: FaultKind::NaN,
            };
            let mut report = AbftReport::default();
            let logits =
                m.forward_example(&tokens, SectionToggles::all(), Some(&spec), &mut report);
            assert!(logits.all_finite(), "{op:?}");
            assert!(report.correction_count() > 0, "{op:?}");
            assert_eq!(report.unrecovered, 0, "{op:?}");
        }
    }

    #[test]
    fn roberta_uses_position_offset() {
        let (m, _) = tiny(ModelConfig::roberta());
        assert_eq!(m.embedding.pos_offset, 2);
        let (mb, _) = tiny(ModelConfig::bert_base());
        assert_eq!(mb.embedding.pos_offset, 0);
    }
}
