//! AdamW optimizer, with ridden checksums over its moment state.
//!
//! The `m`/`v` moments are the only training state that persists
//! *between* steps, so a particle strike while they sit at rest is
//! invisible to every forward/backward guard and silently steers every
//! later update. [`MomentGuard`] closes that hole: each row of each
//! moment matrix carries a triple digest — an ordered `f64` sum, an
//! index-weighted `f64` sum, and the XOR of the `f32` bit patterns —
//! captured after a step and re-derived before the next one. The
//! recompute is bit-deterministic, so a digest mismatch is always a
//! genuine corruption (zero false positives), the weighted/plain sum
//! ratio locates the flipped column, and the XOR delta restores the
//! original bits exactly. Multi-cell corruption in one row exceeds the
//! single-fault model and is surfaced as `unrecovered`.

use crate::param::{Grads, HasParams, Param};
use attn_tensor::{Matrix, OpGuard};
use std::collections::HashMap;

/// Bit-exact digest of one moment-matrix row. The `f64` accumulators are
/// stored as bit patterns so comparison is exact even when a poisoned
/// (NaN/Inf) moment row makes the sums non-finite — a legitimate
/// propagation that must not read as a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowDigest {
    /// Ordered `f64` sum of the row, as bits.
    sum: u64,
    /// Ordered `Σ (j+1)·x_j` in `f64`, as bits — `δwsum/δsum` locates a
    /// single flipped column.
    wsum: u64,
    /// XOR of the `f32` bit patterns — the restore channel.
    xor: u32,
}

fn digest_row(row: &[f32]) -> RowDigest {
    let mut sum = 0.0f64;
    let mut wsum = 0.0f64;
    let mut xor = 0u32;
    for (j, &x) in row.iter().enumerate() {
        let xf = x as f64;
        sum += xf;
        wsum += (j + 1) as f64 * xf;
        xor ^= x.to_bits();
    }
    RowDigest {
        sum: sum.to_bits(),
        wsum: wsum.to_bits(),
        xor,
    }
}

/// Restore candidate: flip column `j` of `row` by the XOR delta and keep
/// it iff the row then re-digests to exactly `stored`.
fn try_candidate(stored: &RowDigest, row: &mut [f32], j: usize, xor_delta: u32) -> bool {
    let old = row[j];
    row[j] = f32::from_bits(old.to_bits() ^ xor_delta);
    if digest_row(row) == *stored {
        true
    } else {
        row[j] = old;
        false
    }
}

/// Locate-and-restore a single corrupted cell; `false` when no single
/// flip explains the digest (multi-cell corruption).
fn try_heal_row(stored: &RowDigest, row: &mut [f32], live: &RowDigest) -> bool {
    let xor_delta = stored.xor ^ live.xor;
    if xor_delta == 0 {
        // Identical bits XOR-wise but differing sums: at least two cells
        // changed in a cancelling pattern — beyond the single-fault model.
        return false;
    }
    let dsum = f64::from_bits(stored.sum) - f64::from_bits(live.sum);
    let dwsum = f64::from_bits(stored.wsum) - f64::from_bits(live.wsum);
    if dsum.is_finite() && dwsum.is_finite() && !attn_tensor::float::exactly_zero_f64(dsum) {
        let j = (dwsum / dsum).round() - 1.0;
        if j >= 0.0 && j < row.len() as f64 && try_candidate(stored, row, j as usize, xor_delta) {
            return true;
        }
    }
    // Non-finite or ambiguous deltas (e.g. a NaN-flip): scan every
    // column; the digest re-check keeps the restore exact.
    (0..row.len()).any(|j| try_candidate(stored, row, j, xor_delta))
}

fn verify_moment(stored: &[RowDigest], mat: &mut Matrix, g: &OpGuard) {
    for (r, expected) in stored.iter().enumerate().take(mat.rows()) {
        g.record_external_check();
        let live = digest_row(mat.row(r));
        if live == *expected {
            continue;
        }
        if try_heal_row(expected, mat.row_mut(r), &live) {
            g.record_external_heal();
        } else {
            g.record_unrecovered();
        }
    }
}

/// Ridden checksums over one parameter's AdamW moments, captured after a
/// step and verified (and healed) before the next one consumes them.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentGuard {
    m: Vec<RowDigest>,
    v: Vec<RowDigest>,
}

impl MomentGuard {
    fn capture(p: &Param) -> Self {
        Self {
            m: (0..p.m.rows()).map(|r| digest_row(p.m.row(r))).collect(),
            v: (0..p.v.rows()).map(|r| digest_row(p.v.row(r))).collect(),
        }
    }

    fn verify_heal(&self, p: &mut Param, g: &OpGuard) {
        if self.m.len() != p.m.rows() || self.v.len() != p.v.rows() {
            return; // stale guard after a shape change; re-captured below
        }
        verify_moment(&self.m, &mut p.m, g);
        verify_moment(&self.v, &mut p.v, g);
    }
}

/// AdamW with decoupled weight decay (the fine-tuning default of the
/// paper's HuggingFace setup).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Step counter (for bias correction).
    pub t: u64,
    /// At-rest moment digests by parameter name, maintained only by the
    /// `*_checked` step paths (the plain paths stay digest-free).
    guards: HashMap<String, MomentGuard>,
}

impl AdamW {
    /// Standard fine-tuning hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
            guards: HashMap::new(),
        }
    }

    /// Merge per-item gradient buffers into the model **in the order
    /// given** — the deterministic reduction that makes parallel training
    /// steps bit-identical to sequential ones — then apply one optimizer
    /// step.
    pub fn step_batched(
        &mut self,
        model: &mut dyn HasParams,
        buffers: impl IntoIterator<Item = Grads>,
    ) {
        self.step_batched_checked(model, buffers, &OpGuard::off());
    }

    /// [`Self::step_batched`] with the moment state guarded: digests are
    /// verified (and single-cell corruption healed) before the update
    /// consumes the moments, and re-captured after it.
    pub fn step_batched_checked(
        &mut self,
        model: &mut dyn HasParams,
        buffers: impl IntoIterator<Item = Grads>,
        g: &OpGuard,
    ) {
        for grads in buffers {
            grads.merge_into(model);
        }
        self.step_checked(model, g);
    }

    /// Apply one optimizer step over every parameter of `model`, then zero
    /// the gradients.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        self.step_checked(model, &OpGuard::off());
    }

    /// Guarded optimizer step: verify-and-heal the at-rest moments, run
    /// the update, then capture fresh digests of the new moments. The
    /// first checked step has nothing captured yet and only captures.
    pub fn step_checked(&mut self, model: &mut dyn HasParams, g: &OpGuard) {
        if g.active() {
            let guards = std::mem::take(&mut self.guards);
            model.visit_params(&mut |p: &mut Param| {
                if let Some(mg) = guards.get(&p.name) {
                    mg.verify_heal(p, g);
                }
            });
            self.guards = guards;
        }
        self.update(model);
        if g.active() {
            let mut guards = std::mem::take(&mut self.guards);
            model.visit_params(&mut |p: &mut Param| {
                if let Some(slot) = guards.get_mut(&p.name) {
                    *slot = MomentGuard::capture(p);
                } else {
                    guards.insert(p.name.clone(), MomentGuard::capture(p));
                }
            });
            self.guards = guards;
        }
    }

    fn update(&mut self, model: &mut dyn HasParams) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        model.visit_params(&mut |p: &mut Param| {
            let n = p.value.len();
            let value = p.value.data_mut();
            let grad = p.grad.data_mut();
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            for i in 0..n {
                let g = grad[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                value[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * value[i]);
                grad[i] = 0.0;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::Matrix;

    struct One {
        p: Param,
    }
    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        m.p.grad = Matrix::full(1, 1, 1.0);
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.0;
        opt.step(&mut m);
        assert!(m.p.value[(0, 0)] < 1.0);
        // Gradient zeroed after the step.
        assert_eq!(m.p.grad[(0, 0)], 0.0);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // With bias correction, |Δ| ≈ lr on the first step regardless of
        // gradient scale.
        for &g in &[1e-3f32, 1.0, 1e3] {
            let mut m = One {
                p: Param::new("w", Matrix::full(1, 1, 0.0)),
            };
            m.p.grad = Matrix::full(1, 1, g);
            let mut opt = AdamW::new(0.01);
            opt.weight_decay = 0.0;
            opt.step(&mut m);
            let delta = m.p.value[(0, 0)].abs();
            assert!((delta - 0.01).abs() < 1e-3, "g={g}: delta {delta}");
        }
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 2.0)),
        };
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.1;
        opt.step(&mut m);
        assert!(m.p.value[(0, 0)] < 2.0);
    }

    #[test]
    fn inf_gradient_poisons_parameters() {
        // This is the mechanism behind the paper's non-trainable states: an
        // INF gradient drives Adam's moments to INF and the update to NaN.
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        m.p.grad = Matrix::full(1, 1, f32::INFINITY);
        let mut opt = AdamW::new(0.01);
        opt.step(&mut m);
        assert!(!m.p.value[(0, 0)].is_finite() || m.p.value[(0, 0)].is_nan());
    }

    #[test]
    fn step_batched_equals_manual_merge_then_step() {
        let mut a = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        let mut b = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        let mut g0 = Grads::new();
        g0.accumulate("w", &Matrix::full(1, 1, 0.25));
        let mut g1 = Grads::new();
        g1.accumulate("w", &Matrix::full(1, 1, 0.5));

        let mut oa = AdamW::new(0.01);
        oa.step_batched(&mut a, [g0, g1]);

        b.p.grad = Matrix::full(1, 1, 0.25 + 0.5);
        let mut ob = AdamW::new(0.01);
        ob.step(&mut b);

        assert_eq!(a.p.value[(0, 0)].to_bits(), b.p.value[(0, 0)].to_bits());
    }

    fn batch(vals: &[f32]) -> One {
        One {
            p: Param::new("w", Matrix::from_vec(2, vals.len() / 2, vals.to_vec())),
        }
    }

    fn grads_of(vals: &[f32]) -> Grads {
        let mut g = Grads::new();
        g.accumulate("w", &Matrix::from_vec(2, vals.len() / 2, vals.to_vec()));
        g
    }

    const W0: [f32; 8] = [1.0, -2.0, 0.5, 3.0, -0.25, 4.0, 0.125, -1.5];
    const G1: [f32; 8] = [0.3, -0.1, 0.7, 0.2, -0.4, 0.6, -0.9, 0.05];
    const G2: [f32; 8] = [-0.2, 0.8, 0.1, -0.6, 0.35, -0.15, 0.45, -0.7];

    #[test]
    fn checked_step_is_bit_identical_to_plain_and_quiet() {
        let mut plain = batch(&W0);
        let mut checked = batch(&W0);
        let mut op = AdamW::new(0.01);
        let mut oc = AdamW::new(0.01);
        let g = OpGuard::new(true, 5e-4);
        for gr in [&G1, &G2] {
            op.step_batched(&mut plain, [grads_of(gr)]);
            oc.step_batched_checked(&mut checked, [grads_of(gr)], &g);
        }
        assert_eq!(plain.p.value, checked.p.value);
        assert_eq!(plain.p.m, checked.p.m);
        assert_eq!(plain.p.v, checked.p.v);
        let s = g.take_stats();
        assert!(s.is_quiet(), "fault-free moments must stay quiet: {s:?}");
        // Second step verified 2 rows × 2 moment matrices.
        assert_eq!(s.checks, 4);
    }

    #[test]
    fn single_cell_moment_corruption_is_healed_exactly() {
        for fault in [
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            3.0e38,
            -3.0e38,
            7.25e-3, // sub-threshold magnitude: digest compare still catches it
        ] {
            for second_moment in [false, true] {
                let mut clean = batch(&W0);
                let mut faulty = batch(&W0);
                let mut oc = AdamW::new(0.01);
                let mut of = AdamW::new(0.01);
                let gq = OpGuard::new(true, 5e-4);
                clean.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
                oc.step_checked(&mut clean, &gq);
                clean.p.grad = Matrix::from_vec(2, 4, G2.to_vec());
                oc.step_checked(&mut clean, &gq);
                assert!(gq.take_stats().is_quiet());

                let gf = OpGuard::new(true, 5e-4);
                faulty.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
                of.step_checked(&mut faulty, &gf);
                let target = if second_moment {
                    &mut faulty.p.v
                } else {
                    &mut faulty.p.m
                };
                target[(1, 2)] = fault;
                faulty.p.grad = Matrix::from_vec(2, 4, G2.to_vec());
                of.step_checked(&mut faulty, &gf);
                let s = gf.take_stats();
                assert_eq!(s.detections, 1, "fault {fault} (v={second_moment})");
                assert_eq!(s.heals, 1, "fault {fault} (v={second_moment})");
                assert_eq!(s.unrecovered, 0);
                assert_eq!(
                    faulty.p.value, clean.p.value,
                    "fault {fault}: corrected step must be bit-identical"
                );
                assert_eq!(faulty.p.m, clean.p.m);
                assert_eq!(faulty.p.v, clean.p.v);
            }
        }
    }

    #[test]
    fn first_checked_step_only_captures() {
        let mut m = batch(&W0);
        m.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
        let mut opt = AdamW::new(0.01);
        let g = OpGuard::new(true, 5e-4);
        opt.step_checked(&mut m, &g);
        // Nothing captured before the first step → nothing verified.
        assert_eq!(g.take_stats().checks, 0);
    }

    #[test]
    fn multi_cell_moment_corruption_is_unrecovered() {
        let mut m = batch(&W0);
        m.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
        let mut opt = AdamW::new(0.01);
        let g = OpGuard::new(true, 5e-4);
        opt.step_checked(&mut m, &g);
        // Two distinct cells of one row: beyond the single-fault model.
        m.p.m[(0, 0)] += 1.0;
        m.p.m[(0, 3)] -= 2.0;
        m.p.grad = Matrix::from_vec(2, 4, G2.to_vec());
        opt.step_checked(&mut m, &g);
        let s = g.take_stats();
        assert_eq!(s.detections, 1);
        assert_eq!(s.heals, 0);
        assert_eq!(s.unrecovered, 1);
    }

    #[test]
    fn poisoned_moments_are_propagation_not_faults() {
        // An INF gradient legitimately drives the moments non-finite; the
        // captured digests must track that state without false alarms.
        let mut m = batch(&W0);
        m.p.grad = Matrix::full(2, 4, f32::INFINITY);
        let mut opt = AdamW::new(0.01);
        let g = OpGuard::new(true, 5e-4);
        opt.step_checked(&mut m, &g);
        m.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
        opt.step_checked(&mut m, &g);
        let s = g.take_stats();
        assert_eq!(s.detections, 0, "NaN moments re-digest identically");
        assert!(s.checks > 0);
    }

    #[test]
    fn quadratic_convergence() {
        // Minimise (w - 3)²: AdamW should approach 3.
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 0.0)),
        };
        let mut opt = AdamW::new(0.05);
        opt.weight_decay = 0.0;
        for _ in 0..500 {
            let w = m.p.value[(0, 0)];
            m.p.grad = Matrix::full(1, 1, 2.0 * (w - 3.0));
            opt.step(&mut m);
        }
        assert!((m.p.value[(0, 0)] - 3.0).abs() < 0.1);
    }
}
