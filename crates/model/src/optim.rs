//! AdamW optimizer, with ridden checksums over its moment state.
//!
//! The `m`/`v` moments are the only training state that persists
//! *between* steps, so a particle strike while they sit at rest is
//! invisible to every forward/backward guard and silently steers every
//! later update. [`MomentGuard`] closes that hole: each row of each
//! moment matrix carries a triple digest — an ordered `f64` sum, an
//! index-weighted `f64` sum, and the XOR of the `f32` bit patterns —
//! captured after a step and re-derived before the next one. The
//! recompute is bit-deterministic, so a digest mismatch is always a
//! genuine corruption (zero false positives), the weighted/plain sum
//! ratio locates the flipped column, and the XOR delta restores the
//! original bits exactly.
//!
//! A second, *column* digest axis turns single-axis localisation into 2D:
//! the mismatched rows × mismatched columns form a suspect rectangle, and
//! region faults that defeat the per-row single-flip model heal through
//! the other axis — every cell of a corrupted row span is the only suspect
//! in its column, so the column XOR delta restores it bit-exactly, and a
//! full 2×2 rectangle is solved from the stored sum/weighted-sum pair with
//! an exact re-digest gate. Corruption beyond the rectangle solvers is
//! surfaced as `unrecovered`; every heal, from any path, is accepted only
//! when the affected rows *and* columns re-digest to their stored bits.

use crate::param::{Grads, HasParams, Param};
use attn_tensor::{Matrix, OpGuard};
use std::collections::HashMap;

/// Bit-exact digest of one moment-matrix row. The `f64` accumulators are
/// stored as bit patterns so comparison is exact even when a poisoned
/// (NaN/Inf) moment row makes the sums non-finite — a legitimate
/// propagation that must not read as a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowDigest {
    /// Ordered `f64` sum of the row, as bits.
    sum: u64,
    /// Ordered `Σ (j+1)·x_j` in `f64`, as bits — `δwsum/δsum` locates a
    /// single flipped column.
    wsum: u64,
    /// XOR of the `f32` bit patterns — the restore channel.
    xor: u32,
}

fn digest_row(row: &[f32]) -> RowDigest {
    let mut sum = 0.0f64;
    let mut wsum = 0.0f64;
    let mut xor = 0u32;
    for (j, &x) in row.iter().enumerate() {
        let xf = x as f64;
        sum += xf;
        wsum += (j + 1) as f64 * xf;
        xor ^= x.to_bits();
    }
    RowDigest {
        sum: sum.to_bits(),
        wsum: wsum.to_bits(),
        xor,
    }
}

/// Column digest of column `c`: the same (sum, weighted sum, xor) triple
/// as [`digest_row`] but walked down the rows, weights by `(r+1)`.
fn digest_col(mat: &Matrix, c: usize) -> RowDigest {
    let mut sum = 0.0f64;
    let mut wsum = 0.0f64;
    let mut xor = 0u32;
    for r in 0..mat.rows() {
        let x = mat[(r, c)];
        let xf = x as f64;
        sum += xf;
        wsum += (r + 1) as f64 * xf;
        xor ^= x.to_bits();
    }
    RowDigest {
        sum: sum.to_bits(),
        wsum: wsum.to_bits(),
        xor,
    }
}

/// All column digests in one row-major sweep (cache-friendly capture).
fn digest_cols(mat: &Matrix) -> Vec<RowDigest> {
    let mut sum = vec![0.0f64; mat.cols()];
    let mut wsum = vec![0.0f64; mat.cols()];
    let mut xor = vec![0u32; mat.cols()];
    for r in 0..mat.rows() {
        let w = (r + 1) as f64;
        for (c, &x) in mat.row(r).iter().enumerate() {
            let xf = x as f64;
            sum[c] += xf;
            wsum[c] += w * xf;
            xor[c] ^= x.to_bits();
        }
    }
    (0..mat.cols())
        .map(|c| RowDigest {
            sum: sum[c].to_bits(),
            wsum: wsum[c].to_bits(),
            xor: xor[c],
        })
        .collect()
}

/// Restore candidate: flip column `j` of `row` by the XOR delta and keep
/// it iff the row then re-digests to exactly `stored`.
fn try_candidate(stored: &RowDigest, row: &mut [f32], j: usize, xor_delta: u32) -> bool {
    let old = row[j];
    row[j] = f32::from_bits(old.to_bits() ^ xor_delta);
    if digest_row(row) == *stored {
        true
    } else {
        row[j] = old;
        false
    }
}

/// Locate-and-restore a single corrupted cell; `false` when no single
/// flip explains the digest (multi-cell corruption).
fn try_heal_row(stored: &RowDigest, row: &mut [f32], live: &RowDigest) -> bool {
    let xor_delta = stored.xor ^ live.xor;
    if xor_delta == 0 {
        // Identical bits XOR-wise but differing sums: at least two cells
        // changed in a cancelling pattern — beyond the single-fault model.
        return false;
    }
    let dsum = f64::from_bits(stored.sum) - f64::from_bits(live.sum);
    let dwsum = f64::from_bits(stored.wsum) - f64::from_bits(live.wsum);
    if dsum.is_finite() && dwsum.is_finite() && !attn_tensor::float::exactly_zero_f64(dsum) {
        let j = (dwsum / dsum).round() - 1.0;
        if j >= 0.0 && j < row.len() as f64 && try_candidate(stored, row, j as usize, xor_delta) {
            return true;
        }
    }
    // Non-finite or ambiguous deltas (e.g. a NaN-flip): scan every
    // column; the digest re-check keeps the restore exact.
    (0..row.len()).any(|j| try_candidate(stored, row, j, xor_delta))
}

/// Step `x` by `steps` ulps in value order (sign-magnitude bit space), the
/// candidate ladder for the 2×2 rectangle solver's sum-channel seed.
fn nudge_f32(x: f32, steps: i64) -> f32 {
    let b = x.to_bits();
    let key = if b & 0x8000_0000 != 0 {
        -((b & 0x7fff_ffff) as i64)
    } else {
        b as i64
    };
    let k = key + steps;
    let bits = if k < 0 {
        0x8000_0000u32 | ((-k) as u32 & 0x7fff_ffff)
    } else {
        k as u32
    };
    f32::from_bits(bits)
}

/// Heal a full 2×2 suspect rectangle `{r0,r1} × {c0,c1}`.
///
/// The four XOR deltas have one 32-bit degree of freedom (row and column
/// XORs share a parity constraint), so the sum channel breaks the tie:
/// the stored (sum, weighted-sum) pair of row `r0`, minus the ordered
/// partial sum over its *clean* cells, is a 2×2 linear system whose
/// solution approximates the original value at `(r0, c0)` to well under
/// an f32 ulp. Each candidate in a small ulp ladder around that seed
/// determines all four deltas through the XOR equations; a candidate is
/// adopted only when every affected row and column re-digests to its
/// stored bits, so an off-by-ulps seed can only cost us the heal, never
/// corrupt the moments.
fn heal_2x2(stored: &MomentDigests, mat: &mut Matrix, rs: [usize; 2], cs: [usize; 2]) -> bool {
    let [r0, r1] = rs;
    let [c0, c1] = cs;
    let x0 = stored.rows[r0].xor ^ digest_row(mat.row(r0)).xor;
    let x1 = stored.rows[r1].xor ^ digest_row(mat.row(r1)).xor;
    let y0 = stored.cols[c0].xor ^ digest_col(mat, c0).xor;
    let y1 = stored.cols[c1].xor ^ digest_col(mat, c1).xor;
    if x0 ^ x1 != y0 ^ y1 {
        // Row and column XOR deltas disagree on the rectangle's parity:
        // the corruption is not confined to these four cells.
        return false;
    }
    // Ordered partial sums of row r0 over the clean (non-suspect) cells.
    let mut s_known = 0.0f64;
    let mut w_known = 0.0f64;
    for (j, &x) in mat.row(r0).iter().enumerate() {
        if j == c0 || j == c1 {
            continue;
        }
        let xf = x as f64;
        s_known += xf;
        w_known += (j + 1) as f64 * xf;
    }
    let dsum = f64::from_bits(stored.rows[r0].sum) - s_known;
    let dwsum = f64::from_bits(stored.rows[r0].wsum) - w_known;
    if !dsum.is_finite() || !dwsum.is_finite() {
        return false; // poisoned originals: the sum channel carries no seed
    }
    let wa = (c0 + 1) as f64;
    let wb = (c1 + 1) as f64;
    let ob = (dwsum - wa * dsum) / (wb - wa);
    let seed = (dsum - ob) as f32;
    // ±8 ulps is orders of magnitude beyond the solve's rounding error.
    for step in 0..=16i64 {
        let off = if step % 2 == 0 {
            step / 2
        } else {
            -(step + 1) / 2
        };
        let cand = nudge_f32(seed, off);
        let d00 = cand.to_bits() ^ mat[(r0, c0)].to_bits();
        if d00 == 0 && x0 == 0 {
            continue; // no-op candidate cannot explain a mismatched row
        }
        let d01 = x0 ^ d00;
        let d10 = y0 ^ d00;
        let d11 = x1 ^ d10;
        for (r, c, d) in [(r0, c0, d00), (r0, c1, d01), (r1, c0, d10), (r1, c1, d11)] {
            let v = mat[(r, c)];
            mat[(r, c)] = f32::from_bits(v.to_bits() ^ d);
        }
        if digest_row(mat.row(r0)) == stored.rows[r0]
            && digest_row(mat.row(r1)) == stored.rows[r1]
            && digest_col(mat, c0) == stored.cols[c0]
            && digest_col(mat, c1) == stored.cols[c1]
        {
            return true;
        }
        for (r, c, d) in [(r0, c0, d00), (r0, c1, d01), (r1, c0, d10), (r1, c1, d11)] {
            let v = mat[(r, c)];
            mat[(r, c)] = f32::from_bits(v.to_bits() ^ d);
        }
    }
    false
}

/// 2D region heal over the suspect rectangle `bad_rows × bad_cols`.
///
/// Peeling pass first: any still-mismatched column intersecting exactly
/// one mismatched row holds that row's only corruption in this column, so
/// its column XOR delta restores the cell (and symmetrically for rows) —
/// this alone covers every single-row region (burst, stuck row) and every
/// L-shaped residue peeling exposes. What survives peeling as an exact
/// 2×2 rectangle goes to [`heal_2x2`]. Returns `true` only when every
/// suspect row and column re-digests to its stored bits.
fn heal_region(
    stored: &MomentDigests,
    mat: &mut Matrix,
    bad_rows: &[usize],
    bad_cols: &[usize],
) -> bool {
    let budget = bad_rows.len() * bad_cols.len() + 2;
    for _ in 0..budget {
        let rs: Vec<usize> = bad_rows
            .iter()
            .copied()
            .filter(|&r| digest_row(mat.row(r)) != stored.rows[r])
            .collect();
        let cs: Vec<usize> = bad_cols
            .iter()
            .copied()
            .filter(|&c| digest_col(mat, c) != stored.cols[c])
            .collect();
        if rs.is_empty() && cs.is_empty() {
            return true;
        }
        if rs.is_empty() || cs.is_empty() {
            return false; // one axis clean, the other not: cancelling corruption
        }
        let mut progress = false;
        for &c in &cs {
            if rs.len() == 1 {
                let r = rs[0];
                let delta = stored.cols[c].xor ^ digest_col(mat, c).xor;
                if delta != 0 {
                    let v = mat[(r, c)];
                    mat[(r, c)] = f32::from_bits(v.to_bits() ^ delta);
                    progress = true;
                }
            }
        }
        if !progress && cs.len() == 1 {
            let c = cs[0];
            for &r in &rs {
                let delta = stored.rows[r].xor ^ digest_row(mat.row(r)).xor;
                if delta != 0 {
                    let v = mat[(r, c)];
                    mat[(r, c)] = f32::from_bits(v.to_bits() ^ delta);
                    progress = true;
                }
            }
        }
        if progress {
            continue;
        }
        if rs.len() == 2 && cs.len() == 2 {
            return heal_2x2(stored, mat, [rs[0], rs[1]], [cs[0], cs[1]])
                && bad_rows
                    .iter()
                    .all(|&r| digest_row(mat.row(r)) == stored.rows[r])
                && bad_cols
                    .iter()
                    .all(|&c| digest_col(mat, c) == stored.cols[c]);
        }
        return false;
    }
    false
}

fn verify_moment(stored: &MomentDigests, mat: &mut Matrix, g: &OpGuard) {
    let mut bad_rows: Vec<usize> = Vec::new();
    for (r, expected) in stored.rows.iter().enumerate().take(mat.rows()) {
        g.record_external_check();
        if digest_row(mat.row(r)) != *expected {
            bad_rows.push(r);
        }
    }
    if bad_rows.is_empty() {
        return;
    }
    // Single-flip fast path, row by row — the 0D fault model.
    let mut region_rows: Vec<usize> = Vec::new();
    for &r in &bad_rows {
        let live = digest_row(mat.row(r));
        if try_heal_row(&stored.rows[r], mat.row_mut(r), &live) {
            g.record_external_heal();
        } else {
            region_rows.push(r);
        }
    }
    if region_rows.is_empty() {
        return;
    }
    // 2D path: intersect with the column axis and heal the rectangle.
    let bad_cols: Vec<usize> = (0..mat.cols())
        .filter(|&c| digest_col(mat, c) != stored.cols[c])
        .collect();
    let snapshot: Vec<(usize, Vec<f32>)> = region_rows
        .iter()
        .map(|&r| (r, mat.row(r).to_vec()))
        .collect();
    if !bad_cols.is_empty() && heal_region(stored, mat, &region_rows, &bad_cols) {
        for _ in &region_rows {
            g.record_external_heal();
        }
    } else {
        for (r, row) in snapshot {
            mat.row_mut(r).copy_from_slice(&row);
        }
        for _ in &region_rows {
            g.record_unrecovered();
        }
    }
}

/// Both digest axes of one moment matrix: per-row and per-column triples.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MomentDigests {
    rows: Vec<RowDigest>,
    cols: Vec<RowDigest>,
}

impl MomentDigests {
    fn capture(mat: &Matrix) -> Self {
        Self {
            rows: (0..mat.rows()).map(|r| digest_row(mat.row(r))).collect(),
            cols: digest_cols(mat),
        }
    }

    fn matches_shape(&self, mat: &Matrix) -> bool {
        self.rows.len() == mat.rows() && self.cols.len() == mat.cols()
    }
}

/// Ridden checksums over one parameter's AdamW moments, captured after a
/// step and verified (and healed) before the next one consumes them.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentGuard {
    m: MomentDigests,
    v: MomentDigests,
}

impl MomentGuard {
    fn capture(p: &Param) -> Self {
        Self {
            m: MomentDigests::capture(&p.m),
            v: MomentDigests::capture(&p.v),
        }
    }

    fn verify_heal(&self, p: &mut Param, g: &OpGuard) {
        if !self.m.matches_shape(&p.m) || !self.v.matches_shape(&p.v) {
            return; // stale guard after a shape change; re-captured below
        }
        verify_moment(&self.m, &mut p.m, g);
        verify_moment(&self.v, &mut p.v, g);
    }
}

/// AdamW with decoupled weight decay (the fine-tuning default of the
/// paper's HuggingFace setup).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Step counter (for bias correction).
    pub t: u64,
    /// At-rest moment digests by parameter name, maintained only by the
    /// `*_checked` step paths (the plain paths stay digest-free).
    guards: HashMap<String, MomentGuard>,
}

impl AdamW {
    /// Standard fine-tuning hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
            guards: HashMap::new(),
        }
    }

    /// Merge per-item gradient buffers into the model **in the order
    /// given** — the deterministic reduction that makes parallel training
    /// steps bit-identical to sequential ones — then apply one optimizer
    /// step.
    pub fn step_batched(
        &mut self,
        model: &mut dyn HasParams,
        buffers: impl IntoIterator<Item = Grads>,
    ) {
        self.step_batched_checked(model, buffers, &OpGuard::off());
    }

    /// [`Self::step_batched`] with the moment state guarded: digests are
    /// verified (and single-cell corruption healed) before the update
    /// consumes the moments, and re-captured after it.
    pub fn step_batched_checked(
        &mut self,
        model: &mut dyn HasParams,
        buffers: impl IntoIterator<Item = Grads>,
        g: &OpGuard,
    ) {
        for grads in buffers {
            grads.merge_into(model);
        }
        self.step_checked(model, g);
    }

    /// Apply one optimizer step over every parameter of `model`, then zero
    /// the gradients.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        self.step_checked(model, &OpGuard::off());
    }

    /// Guarded optimizer step: verify-and-heal the at-rest moments, run
    /// the update, then capture fresh digests of the new moments. The
    /// first checked step has nothing captured yet and only captures.
    pub fn step_checked(&mut self, model: &mut dyn HasParams, g: &OpGuard) {
        if g.active() {
            let guards = std::mem::take(&mut self.guards);
            model.visit_params(&mut |p: &mut Param| {
                if let Some(mg) = guards.get(&p.name) {
                    mg.verify_heal(p, g);
                }
            });
            self.guards = guards;
        }
        self.update(model);
        if g.active() {
            let mut guards = std::mem::take(&mut self.guards);
            model.visit_params(&mut |p: &mut Param| {
                if let Some(slot) = guards.get_mut(&p.name) {
                    *slot = MomentGuard::capture(p);
                } else {
                    guards.insert(p.name.clone(), MomentGuard::capture(p));
                }
            });
            self.guards = guards;
        }
    }

    fn update(&mut self, model: &mut dyn HasParams) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        model.visit_params(&mut |p: &mut Param| {
            let n = p.value.len();
            let value = p.value.data_mut();
            let grad = p.grad.data_mut();
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            for i in 0..n {
                let g = grad[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                value[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * value[i]);
                grad[i] = 0.0;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::Matrix;

    struct One {
        p: Param,
    }
    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        m.p.grad = Matrix::full(1, 1, 1.0);
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.0;
        opt.step(&mut m);
        assert!(m.p.value[(0, 0)] < 1.0);
        // Gradient zeroed after the step.
        assert_eq!(m.p.grad[(0, 0)], 0.0);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // With bias correction, |Δ| ≈ lr on the first step regardless of
        // gradient scale.
        for &g in &[1e-3f32, 1.0, 1e3] {
            let mut m = One {
                p: Param::new("w", Matrix::full(1, 1, 0.0)),
            };
            m.p.grad = Matrix::full(1, 1, g);
            let mut opt = AdamW::new(0.01);
            opt.weight_decay = 0.0;
            opt.step(&mut m);
            let delta = m.p.value[(0, 0)].abs();
            assert!((delta - 0.01).abs() < 1e-3, "g={g}: delta {delta}");
        }
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 2.0)),
        };
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.1;
        opt.step(&mut m);
        assert!(m.p.value[(0, 0)] < 2.0);
    }

    #[test]
    fn inf_gradient_poisons_parameters() {
        // This is the mechanism behind the paper's non-trainable states: an
        // INF gradient drives Adam's moments to INF and the update to NaN.
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        m.p.grad = Matrix::full(1, 1, f32::INFINITY);
        let mut opt = AdamW::new(0.01);
        opt.step(&mut m);
        assert!(!m.p.value[(0, 0)].is_finite() || m.p.value[(0, 0)].is_nan());
    }

    #[test]
    fn step_batched_equals_manual_merge_then_step() {
        let mut a = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        let mut b = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        let mut g0 = Grads::new();
        g0.accumulate("w", &Matrix::full(1, 1, 0.25));
        let mut g1 = Grads::new();
        g1.accumulate("w", &Matrix::full(1, 1, 0.5));

        let mut oa = AdamW::new(0.01);
        oa.step_batched(&mut a, [g0, g1]);

        b.p.grad = Matrix::full(1, 1, 0.25 + 0.5);
        let mut ob = AdamW::new(0.01);
        ob.step(&mut b);

        assert_eq!(a.p.value[(0, 0)].to_bits(), b.p.value[(0, 0)].to_bits());
    }

    fn batch(vals: &[f32]) -> One {
        One {
            p: Param::new("w", Matrix::from_vec(2, vals.len() / 2, vals.to_vec())),
        }
    }

    fn grads_of(vals: &[f32]) -> Grads {
        let mut g = Grads::new();
        g.accumulate("w", &Matrix::from_vec(2, vals.len() / 2, vals.to_vec()));
        g
    }

    const W0: [f32; 8] = [1.0, -2.0, 0.5, 3.0, -0.25, 4.0, 0.125, -1.5];
    const G1: [f32; 8] = [0.3, -0.1, 0.7, 0.2, -0.4, 0.6, -0.9, 0.05];
    const G2: [f32; 8] = [-0.2, 0.8, 0.1, -0.6, 0.35, -0.15, 0.45, -0.7];

    #[test]
    fn checked_step_is_bit_identical_to_plain_and_quiet() {
        let mut plain = batch(&W0);
        let mut checked = batch(&W0);
        let mut op = AdamW::new(0.01);
        let mut oc = AdamW::new(0.01);
        let g = OpGuard::new(true, 5e-4);
        for gr in [&G1, &G2] {
            op.step_batched(&mut plain, [grads_of(gr)]);
            oc.step_batched_checked(&mut checked, [grads_of(gr)], &g);
        }
        assert_eq!(plain.p.value, checked.p.value);
        assert_eq!(plain.p.m, checked.p.m);
        assert_eq!(plain.p.v, checked.p.v);
        let s = g.take_stats();
        assert!(s.is_quiet(), "fault-free moments must stay quiet: {s:?}");
        // Second step verified 2 rows × 2 moment matrices.
        assert_eq!(s.checks, 4);
    }

    #[test]
    fn single_cell_moment_corruption_is_healed_exactly() {
        for fault in [
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            3.0e38,
            -3.0e38,
            7.25e-3, // sub-threshold magnitude: digest compare still catches it
        ] {
            for second_moment in [false, true] {
                let mut clean = batch(&W0);
                let mut faulty = batch(&W0);
                let mut oc = AdamW::new(0.01);
                let mut of = AdamW::new(0.01);
                let gq = OpGuard::new(true, 5e-4);
                clean.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
                oc.step_checked(&mut clean, &gq);
                clean.p.grad = Matrix::from_vec(2, 4, G2.to_vec());
                oc.step_checked(&mut clean, &gq);
                assert!(gq.take_stats().is_quiet());

                let gf = OpGuard::new(true, 5e-4);
                faulty.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
                of.step_checked(&mut faulty, &gf);
                let target = if second_moment {
                    &mut faulty.p.v
                } else {
                    &mut faulty.p.m
                };
                target[(1, 2)] = fault;
                faulty.p.grad = Matrix::from_vec(2, 4, G2.to_vec());
                of.step_checked(&mut faulty, &gf);
                let s = gf.take_stats();
                assert_eq!(s.detections, 1, "fault {fault} (v={second_moment})");
                assert_eq!(s.heals, 1, "fault {fault} (v={second_moment})");
                assert_eq!(s.unrecovered, 0);
                assert_eq!(
                    faulty.p.value, clean.p.value,
                    "fault {fault}: corrected step must be bit-identical"
                );
                assert_eq!(faulty.p.m, clean.p.m);
                assert_eq!(faulty.p.v, clean.p.v);
            }
        }
    }

    #[test]
    fn first_checked_step_only_captures() {
        let mut m = batch(&W0);
        m.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
        let mut opt = AdamW::new(0.01);
        let g = OpGuard::new(true, 5e-4);
        opt.step_checked(&mut m, &g);
        // Nothing captured before the first step → nothing verified.
        assert_eq!(g.take_stats().checks, 0);
    }

    /// Run the two-step checked flow twice — once clean, once with
    /// `corrupt` applied to the first moment between the steps — and
    /// return the guard stats plus both final states.
    fn region_fault_flow(corrupt: impl FnOnce(&mut Matrix)) -> (One, One, attn_tensor::GuardStats) {
        let mut clean = batch(&W0);
        let mut faulty = batch(&W0);
        let mut oc = AdamW::new(0.01);
        let mut of = AdamW::new(0.01);
        let gq = OpGuard::new(true, 5e-4);
        clean.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
        oc.step_checked(&mut clean, &gq);
        clean.p.grad = Matrix::from_vec(2, 4, G2.to_vec());
        oc.step_checked(&mut clean, &gq);
        assert!(gq.take_stats().is_quiet());

        let gf = OpGuard::new(true, 5e-4);
        faulty.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
        of.step_checked(&mut faulty, &gf);
        corrupt(&mut faulty.p.m);
        faulty.p.grad = Matrix::from_vec(2, 4, G2.to_vec());
        of.step_checked(&mut faulty, &gf);
        (clean, faulty, gf.take_stats())
    }

    #[test]
    fn multi_cell_row_region_heals_via_column_digests() {
        // Two distinct cells of one row defeat the per-row single-flip
        // model, but each sits alone in its column: the column XOR deltas
        // restore both bit-exactly.
        let (clean, faulty, s) = region_fault_flow(|m| {
            m[(0, 0)] += 1.0;
            m[(0, 3)] -= 2.0;
        });
        assert_eq!(s.detections, 1);
        assert_eq!(s.heals, 1);
        assert_eq!(s.unrecovered, 0);
        assert_eq!(
            faulty.p.value, clean.p.value,
            "healed step must be bit-identical"
        );
        assert_eq!(faulty.p.m, clean.p.m);
        assert_eq!(faulty.p.v, clean.p.v);
    }

    #[test]
    fn rectangular_2x2_region_heals_bit_exactly() {
        // A full 2×2 rectangle — two cells in each of two rows, sharing
        // columns — is underdetermined for XOR alone; the sum-channel seed
        // plus the exact re-digest gate recovers all four cells.
        let (clean, faulty, s) = region_fault_flow(|m| {
            m[(0, 1)] = f32::INFINITY;
            m[(0, 3)] += 0.75;
            m[(1, 1)] = f32::NAN;
            m[(1, 3)] *= -3.0;
        });
        assert_eq!(s.detections, 2, "both rows detected");
        assert_eq!(s.heals, 2, "both rows healed through the 2D solver");
        assert_eq!(s.unrecovered, 0);
        assert_eq!(
            faulty.p.value, clean.p.value,
            "healed step must be bit-identical"
        );
        assert_eq!(faulty.p.m, clean.p.m);
        assert_eq!(faulty.p.v, clean.p.v);
    }

    #[test]
    fn region_beyond_2x2_is_unrecovered_and_reverted() {
        // A 2×3 region exceeds the rectangle solvers; the guard must
        // surface it instead of guessing, leaving the rows untouched.
        let (_, faulty, s) = region_fault_flow(|m| {
            for r in 0..2 {
                for c in [0usize, 1, 3] {
                    m[(r, c)] += (1 + r + c) as f32;
                }
            }
        });
        assert_eq!(s.detections, 2);
        assert_eq!(s.heals, 0);
        assert_eq!(s.unrecovered, 2);
        assert!(faulty.p.m.all_finite());
    }

    #[test]
    fn poisoned_moments_are_propagation_not_faults() {
        // An INF gradient legitimately drives the moments non-finite; the
        // captured digests must track that state without false alarms.
        let mut m = batch(&W0);
        m.p.grad = Matrix::full(2, 4, f32::INFINITY);
        let mut opt = AdamW::new(0.01);
        let g = OpGuard::new(true, 5e-4);
        opt.step_checked(&mut m, &g);
        m.p.grad = Matrix::from_vec(2, 4, G1.to_vec());
        opt.step_checked(&mut m, &g);
        let s = g.take_stats();
        assert_eq!(s.detections, 0, "NaN moments re-digest identically");
        assert!(s.checks > 0);
    }

    #[test]
    fn quadratic_convergence() {
        // Minimise (w - 3)²: AdamW should approach 3.
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 0.0)),
        };
        let mut opt = AdamW::new(0.05);
        opt.weight_decay = 0.0;
        for _ in 0..500 {
            let w = m.p.value[(0, 0)];
            m.p.grad = Matrix::full(1, 1, 2.0 * (w - 3.0));
            opt.step(&mut m);
        }
        assert!((m.p.value[(0, 0)] - 3.0).abs() < 0.1);
    }
}
