//! AdamW optimizer.

use crate::param::{Grads, HasParams, Param};

/// AdamW with decoupled weight decay (the fine-tuning default of the
/// paper's HuggingFace setup).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Step counter (for bias correction).
    pub t: u64,
}

impl AdamW {
    /// Standard fine-tuning hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
        }
    }

    /// Merge per-item gradient buffers into the model **in the order
    /// given** — the deterministic reduction that makes parallel training
    /// steps bit-identical to sequential ones — then apply one optimizer
    /// step.
    pub fn step_batched(
        &mut self,
        model: &mut dyn HasParams,
        buffers: impl IntoIterator<Item = Grads>,
    ) {
        for g in buffers {
            g.merge_into(model);
        }
        self.step(model);
    }

    /// Apply one optimizer step over every parameter of `model`, then zero
    /// the gradients.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        model.visit_params(&mut |p: &mut Param| {
            let n = p.value.len();
            let value = p.value.data_mut();
            let grad = p.grad.data_mut();
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            for i in 0..n {
                let g = grad[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                value[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * value[i]);
                grad[i] = 0.0;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::Matrix;

    struct One {
        p: Param,
    }
    impl HasParams for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        m.p.grad = Matrix::full(1, 1, 1.0);
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.0;
        opt.step(&mut m);
        assert!(m.p.value[(0, 0)] < 1.0);
        // Gradient zeroed after the step.
        assert_eq!(m.p.grad[(0, 0)], 0.0);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // With bias correction, |Δ| ≈ lr on the first step regardless of
        // gradient scale.
        for &g in &[1e-3f32, 1.0, 1e3] {
            let mut m = One {
                p: Param::new("w", Matrix::full(1, 1, 0.0)),
            };
            m.p.grad = Matrix::full(1, 1, g);
            let mut opt = AdamW::new(0.01);
            opt.weight_decay = 0.0;
            opt.step(&mut m);
            let delta = m.p.value[(0, 0)].abs();
            assert!((delta - 0.01).abs() < 1e-3, "g={g}: delta {delta}");
        }
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 2.0)),
        };
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.1;
        opt.step(&mut m);
        assert!(m.p.value[(0, 0)] < 2.0);
    }

    #[test]
    fn inf_gradient_poisons_parameters() {
        // This is the mechanism behind the paper's non-trainable states: an
        // INF gradient drives Adam's moments to INF and the update to NaN.
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        m.p.grad = Matrix::full(1, 1, f32::INFINITY);
        let mut opt = AdamW::new(0.01);
        opt.step(&mut m);
        assert!(!m.p.value[(0, 0)].is_finite() || m.p.value[(0, 0)].is_nan());
    }

    #[test]
    fn step_batched_equals_manual_merge_then_step() {
        let mut a = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        let mut b = One {
            p: Param::new("w", Matrix::full(1, 1, 1.0)),
        };
        let mut g0 = Grads::new();
        g0.accumulate("w", &Matrix::full(1, 1, 0.25));
        let mut g1 = Grads::new();
        g1.accumulate("w", &Matrix::full(1, 1, 0.5));

        let mut oa = AdamW::new(0.01);
        oa.step_batched(&mut a, [g0, g1]);

        b.p.grad = Matrix::full(1, 1, 0.25 + 0.5);
        let mut ob = AdamW::new(0.01);
        ob.step(&mut b);

        assert_eq!(a.p.value[(0, 0)].to_bits(), b.p.value[(0, 0)].to_bits());
    }

    #[test]
    fn quadratic_convergence() {
        // Minimise (w - 3)²: AdamW should approach 3.
        let mut m = One {
            p: Param::new("w", Matrix::full(1, 1, 0.0)),
        };
        let mut opt = AdamW::new(0.05);
        opt.weight_decay = 0.0;
        for _ in 0..500 {
            let w = m.p.value[(0, 0)];
            m.p.grad = Matrix::full(1, 1, 2.0 * (w - 3.0));
            opt.step(&mut m);
        }
        assert!((m.p.value[(0, 0)] - 3.0).abs() < 0.1);
    }
}
