//! Synthetic MRPC-style paraphrase corpus.
//!
//! The paper fine-tunes on GLUE/MRPC (sentence-pair paraphrase
//! classification). We cannot ship that corpus, so this module generates a
//! deterministic synthetic equivalent with the same task shape:
//!
//! * an example is `[CLS] s1 [SEP] s2 [SEP]` over a small vocabulary;
//! * **positive** pairs: `s2` is `s1` with a few synonym substitutions and a
//!   local shuffle (high lexical overlap);
//! * **negative** pairs: `s2` is an independent sentence sharing only
//!   incidental words (low overlap).
//!
//! The label is therefore recoverable from overlap statistics — exactly the
//! kind of signal a small transformer learns in 2–3 epochs, which is what
//! the Fig 6 loss curves need.

use attn_tensor::rng::TensorRng;

/// Reserved token ids.
pub const PAD: usize = 0;
/// Classification-start token.
pub const CLS: usize = 1;
/// Separator token.
pub const SEP: usize = 2;
/// First ordinary vocabulary id.
pub const WORD_BASE: usize = 3;

/// One classification example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Fixed-length token sequence `[CLS] s1 [SEP] s2 [SEP] PAD…`.
    pub tokens: Vec<usize>,
    /// 1 = paraphrase, 0 = not.
    pub label: usize,
}

/// Deterministic synthetic paraphrase dataset.
#[derive(Debug, Clone)]
pub struct SyntheticMrpc {
    /// All examples.
    pub examples: Vec<Example>,
    /// Sequence length every example is padded/truncated to.
    pub seq_len: usize,
    /// Vocabulary size examples draw from.
    pub vocab: usize,
}

impl SyntheticMrpc {
    /// Generate `n` examples (balanced labels) over `vocab` tokens at fixed
    /// `seq_len`.
    ///
    /// # Panics
    /// Panics when `vocab` is too small or `seq_len` cannot hold two
    /// sentences.
    pub fn generate(n: usize, vocab: usize, seq_len: usize, seed: u64) -> Self {
        assert!(vocab >= WORD_BASE + 20, "vocabulary too small");
        assert!(seq_len >= 11, "sequence too short for two sentences");
        let mut rng = TensorRng::seed_from(seed);
        let sent_len = (seq_len - 3) / 2;
        let mut examples = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let s1 = random_sentence(&mut rng, vocab, sent_len);
            let s2 = if label == 1 {
                paraphrase(&mut rng, &s1, vocab)
            } else {
                random_sentence(&mut rng, vocab, sent_len)
            };
            let mut tokens = Vec::with_capacity(seq_len);
            tokens.push(CLS);
            tokens.extend_from_slice(&s1);
            tokens.push(SEP);
            tokens.extend_from_slice(&s2);
            tokens.push(SEP);
            tokens.resize(seq_len, PAD);
            tokens.truncate(seq_len);
            examples.push(Example { tokens, label });
        }
        Self {
            examples,
            seq_len,
            vocab,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Iterate over shuffled mini-batches for one epoch.
    pub fn batches(&self, batch_size: usize, rng: &mut TensorRng) -> Vec<Vec<&Example>> {
        let order = rng.permutation(self.len());
        order
            .chunks(batch_size)
            .map(|chunk| chunk.iter().map(|&i| &self.examples[i]).collect())
            .collect()
    }
}

fn random_sentence(rng: &mut TensorRng, vocab: usize, len: usize) -> Vec<usize> {
    (0..len)
        .map(|_| WORD_BASE + rng.index(vocab - WORD_BASE))
        .collect()
}

/// Build a paraphrase: synonym-substitute ~25% of words (a fixed id shift,
/// the "synonym table") and swap one adjacent pair.
fn paraphrase(rng: &mut TensorRng, s: &[usize], vocab: usize) -> Vec<usize> {
    let span = vocab - WORD_BASE;
    let mut out = s.to_vec();
    for w in out.iter_mut() {
        if rng.bernoulli(0.25) {
            *w = WORD_BASE + ((*w - WORD_BASE) + span / 2) % span;
        }
    }
    if out.len() >= 2 {
        let i = rng.index(out.len() - 1);
        out.swap(i, i + 1);
    }
    out
}

/// Lexical-overlap ratio between the two sentences of an example — a sanity
/// metric showing the labels are learnable.
pub fn overlap_score(ex: &Example) -> f32 {
    let seps: Vec<usize> = ex
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, &t)| t == SEP)
        .map(|(i, _)| i)
        .collect();
    if seps.len() < 2 {
        return 0.0;
    }
    let s1 = &ex.tokens[1..seps[0]];
    let s2 = &ex.tokens[seps[0] + 1..seps[1]];
    if s1.is_empty() || s2.is_empty() {
        return 0.0;
    }
    let span = 1usize.max(s1.len());
    let hits = s1.iter().filter(|t| s2.contains(t)).count();
    hits as f32 / span as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = SyntheticMrpc::generate(20, 256, 32, 7);
        let b = SyntheticMrpc::generate(20, 256, 32, 7);
        assert_eq!(a.examples, b.examples);
    }

    #[test]
    fn balanced_labels_and_fixed_length() {
        let ds = SyntheticMrpc::generate(40, 256, 32, 1);
        let pos = ds.examples.iter().filter(|e| e.label == 1).count();
        assert_eq!(pos, 20);
        assert!(ds.examples.iter().all(|e| e.tokens.len() == 32));
        assert!(ds.examples.iter().all(|e| e.tokens[0] == CLS));
    }

    #[test]
    fn tokens_within_vocab() {
        let ds = SyntheticMrpc::generate(50, 128, 24, 3);
        assert!(ds
            .examples
            .iter()
            .all(|e| e.tokens.iter().all(|&t| t < 128)));
    }

    #[test]
    fn positives_have_higher_overlap() {
        let ds = SyntheticMrpc::generate(200, 256, 32, 5);
        let mean = |label: usize| -> f32 {
            let xs: Vec<f32> = ds
                .examples
                .iter()
                .filter(|e| e.label == label)
                .map(overlap_score)
                .collect();
            xs.iter().sum::<f32>() / xs.len() as f32
        };
        let pos = mean(1);
        let neg = mean(0);
        assert!(
            pos > neg + 0.3,
            "labels not learnable: pos overlap {pos}, neg {neg}"
        );
    }

    #[test]
    fn batches_cover_dataset() {
        let ds = SyntheticMrpc::generate(23, 256, 32, 9);
        let mut rng = TensorRng::seed_from(1);
        let batches = ds.batches(8, &mut rng);
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 23);
    }
}
