//! Analytic flop accounting for the attention mechanism (paper Table 3).
//!
//! Table 3 reports the share of attention-mechanism work spent in its six
//! GEMMs (99.3%–99.7% across the four models). That ratio is a property of
//! the *published* model dimensions, so this module counts flops at paper
//! scale (hidden 768, 12 heads, MRPC-length sequences), independent of the
//! CPU-scale training dimensions used elsewhere in the reproduction.

/// Attention dimensions used for flop accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnDims {
    /// Sequence length.
    pub seq: usize,
    /// Model width.
    pub hidden: usize,
    /// Head count.
    pub heads: usize,
    /// Whether an additive attention mask is applied (causal decoders).
    pub masked: bool,
}

impl AttnDims {
    /// BERT-base on MRPC (seq 128).
    pub fn paper_bert() -> Self {
        Self {
            seq: 128,
            hidden: 768,
            heads: 12,
            masked: false,
        }
    }

    /// GPT-2 (124M) on MRPC.
    pub fn paper_gpt2() -> Self {
        Self {
            seq: 128,
            hidden: 768,
            heads: 12,
            masked: true,
        }
    }

    /// GPT-Neo-125M on MRPC (local attention adds masking work on top of
    /// smaller per-head width).
    pub fn paper_gpt_neo() -> Self {
        Self {
            seq: 128,
            hidden: 768,
            heads: 12,
            masked: true,
        }
    }

    /// RoBERTa-base on MRPC.
    pub fn paper_roberta() -> Self {
        Self {
            seq: 128,
            hidden: 768,
            heads: 12,
            masked: false,
        }
    }

    /// Flops of the six attention GEMMs, in pipeline order
    /// `[X·W_Q, X·W_K, Q·Kᵀ, X·W_V, AP·V, CL·W_O]`.
    pub fn gemm_flops(&self) -> [f64; 6] {
        let s = self.seq as f64;
        let h = self.hidden as f64;
        let proj = 2.0 * s * h * h;
        let score = 2.0 * s * s * h; // summed over heads
        [proj, proj, score, proj, score, proj]
    }

    /// Total GEMM flops.
    pub fn total_gemm_flops(&self) -> f64 {
        self.gemm_flops().iter().sum()
    }

    /// Softmax work: max-scan, subtract, exp (costed at 8 flops on SFU),
    /// sum, divide — per element of every head's `seq × seq` score matrix.
    pub fn softmax_flops(&self) -> f64 {
        let s = self.seq as f64;
        let per_elem = 12.0;
        per_elem * s * s * self.heads as f64
    }

    /// Everything else: 1/√d scaling, bias adds, optional mask add.
    pub fn other_flops(&self) -> f64 {
        let s = self.seq as f64;
        let h = self.hidden as f64;
        let scale = s * s * self.heads as f64;
        let bias = 4.0 * s * h;
        let mask = if self.masked {
            // mask add + the bandwidth-equivalent of building/reading it
            2.0 * s * s * self.heads as f64
        } else {
            0.0
        };
        scale + bias + mask
    }

    /// GEMM share of the whole attention mechanism — the Table 3 cell.
    pub fn gemm_ratio(&self) -> f64 {
        let g = self.total_gemm_flops();
        g / (g + self.softmax_flops() + self.other_flops())
    }
}

/// `(model name, dims)` for the four Table 3 rows.
pub fn table3_rows() -> Vec<(&'static str, AttnDims)> {
    vec![
        ("Bert", AttnDims::paper_bert()),
        ("GPT-2", AttnDims::paper_gpt2()),
        ("GPT-Neo", AttnDims::paper_gpt_neo()),
        ("Roberta", AttnDims::paper_roberta()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_formulae() {
        let d = AttnDims {
            seq: 4,
            hidden: 8,
            heads: 2,
            masked: false,
        };
        let f = d.gemm_flops();
        assert_eq!(f[0], 2.0 * 4.0 * 64.0);
        assert_eq!(f[2], 2.0 * 16.0 * 8.0);
        assert_eq!(d.total_gemm_flops(), f.iter().sum::<f64>());
    }

    #[test]
    fn paper_scale_ratios_exceed_99_percent() {
        // The Table 3 reproduction: GEMMs dominate attention at paper scale.
        for (name, dims) in table3_rows() {
            let r = dims.gemm_ratio();
            assert!(r > 0.99, "{name}: ratio {r}");
            assert!(r < 1.0);
        }
    }

    #[test]
    fn masked_models_have_slightly_lower_ratio() {
        let bert = AttnDims::paper_bert().gemm_ratio();
        let gpt2 = AttnDims::paper_gpt2().gemm_ratio();
        assert!(gpt2 < bert);
    }

    #[test]
    fn ratio_falls_with_longer_sequences() {
        // Quadratic softmax/mask terms grow faster than the projection
        // GEMMs, so very long sequences dilute the GEMM share.
        let short = AttnDims {
            seq: 64,
            ..AttnDims::paper_bert()
        };
        let long = AttnDims {
            seq: 4096,
            ..AttnDims::paper_bert()
        };
        assert!(long.gemm_ratio() < short.gemm_ratio());
    }
}
