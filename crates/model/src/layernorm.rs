//! Layer normalisation with learnable scale/shift.

use crate::param::{Grads, HasParams, Param};
use attn_tensor::guard::{layer_norm_backward_checked, layer_norm_checked};
use attn_tensor::ops::{layer_norm, LayerNormCache};
use attn_tensor::{Matrix, OpGuard};

/// LayerNorm over the hidden dimension.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, `1 × hidden`, initialised to ones.
    pub gamma: Param,
    /// Shift, `1 × hidden`, initialised to zeros.
    pub beta: Param,
    /// Variance epsilon.
    pub eps: f32,
    cache: Option<LayerNormCache>,
}

impl LayerNorm {
    /// Standard initialisation (γ = 1, β = 0).
    pub fn new(name: &str, hidden: usize, eps: f32) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Matrix::full(1, hidden, 1.0)),
            beta: Param::zeros(format!("{name}.beta"), 1, hidden),
            eps,
            cache: None,
        }
    }

    /// Stateless forward: returns the output and the statistics tape.
    pub fn forward_tape(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        self.forward_tape_checked(x, &OpGuard::off())
    }

    /// Guarded stateless forward: per-row invariant screens with exact
    /// recompute-from-input on violation.
    pub fn forward_tape_checked(&self, x: &Matrix, g: &OpGuard) -> (Matrix, LayerNormCache) {
        layer_norm_checked(x, self.gamma.bias(), self.beta.bias(), self.eps, g)
    }

    /// Stateless backward over a tape; γ/β gradients go into `grads`.
    pub fn backward_tape(&self, dy: &Matrix, cache: &LayerNormCache, grads: &mut Grads) -> Matrix {
        self.backward_tape_checked(dy, cache, grads, &OpGuard::off())
    }

    /// Guarded stateless backward; see
    /// [`attn_tensor::guard::verify_layer_norm_backward`].
    pub fn backward_tape_checked(
        &self,
        dy: &Matrix,
        cache: &LayerNormCache,
        grads: &mut Grads,
        g: &OpGuard,
    ) -> Matrix {
        let (dx, dgamma, dbeta) = layer_norm_backward_checked(dy, cache, self.gamma.bias(), g);
        grads.accumulate(&self.gamma.name, &Matrix::from_vec(1, dgamma.len(), dgamma));
        grads.accumulate(&self.beta.name, &Matrix::from_vec(1, dbeta.len(), dbeta));
        dx
    }

    /// Forward pass, caching statistics for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (y, cache) = self.forward_tape(x);
        self.cache = Some(cache);
        y
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        layer_norm(x, self.gamma.bias(), self.beta.bias(), self.eps).0
    }

    /// Backward pass; returns `dx` and accumulates γ/β gradients.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("LayerNorm::backward before forward");
        let mut grads = Grads::new();
        let dx = self.backward_tape(dy, &cache, &mut grads);
        grads.merge_into(self);
        dx
    }
}

impl HasParams for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::rng::TensorRng;

    #[test]
    fn normalises_rows() {
        let mut rng = TensorRng::seed_from(1);
        let mut ln = LayerNorm::new("ln", 16, 1e-5);
        let x = rng.normal_matrix(4, 16, 5.0);
        let y = ln.forward(&x);
        for r in 0..4 {
            let mu: f32 = y.row(r).iter().sum::<f32>() / 16.0;
            assert!(mu.abs() < 1e-4);
        }
    }

    #[test]
    fn gradient_check() {
        let mut rng = TensorRng::seed_from(2);
        let mut ln = LayerNorm::new("ln", 6, 1e-5);
        ln.gamma.value = rng.uniform_matrix(1, 6, 0.5, 1.5);
        ln.beta.value = rng.uniform_matrix(1, 6, -0.5, 0.5);
        let x = rng.normal_matrix(3, 6, 2.0);
        let dy = rng.normal_matrix(3, 6, 1.0);
        let _ = ln.forward(&x);
        let dx = ln.backward(&dy);

        let loss = |l: &LayerNorm, xx: &Matrix| -> f32 {
            let y = l.forward_inference(xx);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };
        let eps = 1e-2;
        for r in 0..3 {
            for c in 0..6 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss(&ln, &xp) - loss(&ln, &xm)) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 3e-2,
                    "dx ({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
        for c in 0..6 {
            let mut lp = ln.clone();
            lp.gamma.value[(0, c)] += eps;
            let mut lm = ln.clone();
            lm.gamma.value[(0, c)] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((fd - ln.gamma.grad[(0, c)]).abs() < 3e-2, "dgamma {c}");
        }
    }
}
