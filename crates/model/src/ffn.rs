//! Position-wise feed-forward network: `Linear → GELU → Linear`.

use crate::linear::Linear;
use crate::param::{HasParams, Param};
use attn_tensor::ops::{gelu_backward, gelu_matrix};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;

/// Transformer FFN block (expansion factor configurable, 4× by default).
#[derive(Debug, Clone)]
pub struct FeedForward {
    /// Expansion projection.
    pub lin1: Linear,
    /// Contraction projection.
    pub lin2: Linear,
    cache_pre: Option<Matrix>,
}

impl FeedForward {
    /// Build with the given inner width.
    pub fn new(name: &str, hidden: usize, inner: usize, rng: &mut TensorRng) -> Self {
        Self {
            lin1: Linear::new(&format!("{name}.lin1"), hidden, inner, rng),
            lin2: Linear::new(&format!("{name}.lin2"), inner, hidden, rng),
            cache_pre: None,
        }
    }

    /// Forward pass with caching.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let pre = self.lin1.forward(x);
        let act = gelu_matrix(&pre);
        self.cache_pre = Some(pre);
        self.lin2.forward(&act)
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let pre = self.lin1.forward_inference(x);
        self.lin2.forward_inference(&gelu_matrix(&pre))
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let pre = self
            .cache_pre
            .take()
            .expect("FeedForward::backward before forward");
        let dact = self.lin2.backward(dy);
        let dpre = gelu_backward(&pre, &dact);
        self.lin1.backward(&dpre)
    }
}

impl HasParams for FeedForward {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = TensorRng::seed_from(1);
        let mut ffn = FeedForward::new("f", 8, 32, &mut rng);
        let x = rng.normal_matrix(5, 8, 1.0);
        let y = ffn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 8));
    }

    #[test]
    fn gradient_check_dx() {
        let mut rng = TensorRng::seed_from(2);
        let mut ffn = FeedForward::new("f", 4, 8, &mut rng);
        let x = rng.normal_matrix(2, 4, 1.0);
        let dy = rng.normal_matrix(2, 4, 1.0);
        let _ = ffn.forward(&x);
        let dx = ffn.backward(&dy);

        let loss = |f: &FeedForward, xx: &Matrix| -> f32 {
            let y = f.forward_inference(xx);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };
        let eps = 1e-2;
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss(&ffn, &xp) - loss(&ffn, &xm)) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 3e-2,
                    "dx ({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = TensorRng::seed_from(3);
        let mut ffn = FeedForward::new("f", 3, 6, &mut rng);
        let x = rng.normal_matrix(2, 3, 1.0);
        let dy = rng.normal_matrix(2, 3, 1.0);
        let _ = ffn.forward(&x);
        let _ = ffn.backward(&dy);

        let loss = |f: &FeedForward, xx: &Matrix| -> f32 {
            let y = f.forward_inference(xx);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };
        let eps = 1e-2;
        for r in 0..3 {
            for c in 0..6 {
                let mut fp = ffn.clone();
                fp.lin1.w.value[(r, c)] += eps;
                let mut fm = ffn.clone();
                fm.lin1.w.value[(r, c)] -= eps;
                let fd = (loss(&fp, &x) - loss(&fm, &x)) / (2.0 * eps);
                assert!((fd - ffn.lin1.w.grad[(r, c)]).abs() < 3e-2, "dW1 ({r},{c})");
            }
        }
    }

    #[test]
    fn param_count() {
        let mut rng = TensorRng::seed_from(4);
        let mut ffn = FeedForward::new("f", 4, 16, &mut rng);
        // 4×16 + 16 + 16×4 + 4 = 148
        assert_eq!(ffn.param_count(), 148);
    }
}
