//! Position-wise feed-forward network: `Linear → GELU → Linear`, with an
//! ATTNChecker-guarded forward that protects both GEMMs end-to-end.
//!
//! The FFN is the section `S_FFN = {H·W_1, GELU(·)·W_2}` built on
//! [`GuardedSection`]: the block input is column-encoded once and its
//! checksums ride through the expansion GEMM to a detection point at the
//! pre-GELU activation; GELU is a nonlinearity, so the pipeline exits and
//! re-encodes (exactly like softmax in `S_CL`), and the contraction GEMM
//! gets its own delayed detection point. Corrections are refined to exact
//! bits by replaying the producing dot product, so a corrected step is
//! bit-identical to the fault-free step — rollback-free, end-to-end through
//! training.

use crate::linear::ProtectedLinear;
use crate::param::{Grads, HasParams, Param};
use crate::tape::FfnTape;
use attn_tensor::guard::{gelu_backward_checked, gelu_matrix_checked, gelu_matrix_checked_inplace};
use attn_tensor::ops::{gelu_backward, gelu_matrix};
use attn_tensor::rng::TensorRng;
use attn_tensor::{Matrix, OpGuard};
use attnchecker::attention::AttnOp;
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::SectionId;
use attnchecker::section::{ForwardCtx, GuardedSection};

/// Transformer FFN block (expansion factor configurable, 4× by default).
#[derive(Debug, Clone)]
pub struct FeedForward {
    /// Expansion projection (tap site [`AttnOp::Ffn1`]).
    pub lin1: ProtectedLinear,
    /// Contraction projection (tap site [`AttnOp::Ffn2`]).
    pub lin2: ProtectedLinear,
    cache_pre: Option<Matrix>,
}

impl FeedForward {
    /// Build with the given inner width.
    pub fn new(name: &str, hidden: usize, inner: usize, rng: &mut TensorRng) -> Self {
        Self {
            lin1: ProtectedLinear::new(&format!("{name}.lin1"), hidden, inner, AttnOp::Ffn1, rng),
            lin2: ProtectedLinear::new(&format!("{name}.lin2"), inner, hidden, AttnOp::Ffn2, rng),
            cache_pre: None,
        }
    }

    /// Stateless unprotected forward: returns the output and the
    /// activation tape.
    pub fn forward_tape(&self, x: &Matrix) -> (Matrix, FfnTape) {
        self.forward_tape_with(x, &OpGuard::off())
    }

    /// Stateless forward with a guarded GELU: the nonlinearity's output
    /// is screened element-wise and healed by exact recompute on
    /// violation. The GEMMs stay unprotected (that is
    /// [`Self::forward_guarded_tape`]'s job).
    pub fn forward_tape_with(&self, x: &Matrix, g: &OpGuard) -> (Matrix, FfnTape) {
        let (pre, x_tape) = self.lin1.inner.forward_tape(x);
        let act = gelu_matrix_checked(&pre, g);
        let (y, act_tape) = self.lin2.inner.forward_tape(&act);
        (
            y,
            FfnTape {
                x: x_tape,
                pre,
                act: act_tape,
            },
        )
    }

    /// Stateless guarded forward: both GEMMs run inside one `S_FFN`
    /// section under `config`, gated by `ctx.toggles.s_ffn`, with fault
    /// taps at [`AttnOp::Ffn1`]/[`AttnOp::Ffn2`] and in-place
    /// (rollback-free) correction. Degrades to the exact unprotected
    /// computation when the section is off. The returned tape holds the
    /// healed activations, so backward proceeds exactly as fault-free.
    pub fn forward_guarded_tape(
        &self,
        x: &Matrix,
        config: &ProtectionConfig,
        ctx: &mut ForwardCtx<'_, '_>,
    ) -> (Matrix, FfnTape) {
        let sec = GuardedSection::begin(
            SectionId::FeedForward,
            config,
            ctx.toggles.s_ffn,
            ctx.report,
        );
        if !sec.active() && ctx.hook.is_none() {
            // Nothing to detect and no taps to fire: the inactive guarded
            // pipeline computes the identical bits but pays several
            // full-matrix copies (plain wraps + logical extractions), which
            // would tax the unprotected baseline every overhead experiment
            // divides by.
            return self.forward_tape(x);
        }
        let op_guard = GuardedSection::guard_step(config);
        // The block input enters S_FFN through the fused encode path of
        // `ProtectedLinear`: no standalone encode sweep over `x`.
        let xc = sec.operand(x);
        let (pre, x_tape) = self.lin1.forward_guarded_tape(&xc, &sec, ctx);
        // GELU is nonlinear: exit the checksummed region; the result's
        // re-encoding rides inside the contraction GEMM's packing pass.
        // The nonlinearity itself is covered by the element-wise op
        // guard (bounds screen + exact recompute from the healed `pre`).
        let act = CheckedMatrix::from_plain_owned(sec.exit_cols(&pre, |m| {
            gelu_matrix_checked_inplace(m, &op_guard);
        }));
        let (y, act_tape) = self.lin2.forward_guarded_tape(&act, &sec, ctx);
        ctx.report.absorb_op_guard(op_guard.take_stats());
        (
            y.logical(),
            FfnTape {
                x: x_tape,
                pre: pre.logical(),
                act: act_tape,
            },
        )
    }

    /// Stateless backward over a tape; returns `dx`.
    pub fn backward_tape(&self, dy: &Matrix, tape: &FfnTape, grads: &mut Grads) -> Matrix {
        self.backward_tape_checked(dy, tape, grads, &OpGuard::off())
    }

    /// Stateless backward with a guarded GELU derivative; see
    /// [`attn_tensor::guard::verify_gelu_backward`].
    pub fn backward_tape_checked(
        &self,
        dy: &Matrix,
        tape: &FfnTape,
        grads: &mut Grads,
        g: &OpGuard,
    ) -> Matrix {
        let dact = self.lin2.backward_tape(dy, &tape.act, grads);
        let dpre = gelu_backward_checked(&tape.pre, &dact, g);
        self.lin1.backward_tape(&dpre, &tape.x, grads)
    }

    /// Unprotected forward pass with caching.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let pre = self.lin1.forward(x);
        let act = gelu_matrix(&pre);
        self.cache_pre = Some(pre);
        self.lin2.forward(&act)
    }

    /// Guarded forward with caching — see [`Self::forward_guarded_tape`].
    pub fn forward_guarded(
        &mut self,
        x: &Matrix,
        config: &ProtectionConfig,
        ctx: &mut ForwardCtx<'_, '_>,
    ) -> Matrix {
        let (y, tape) = self.forward_guarded_tape(x, config, ctx);
        self.lin1.inner.cache_x = Some(tape.x);
        self.cache_pre = Some(tape.pre);
        self.lin2.inner.cache_x = Some(tape.act);
        y
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let pre = self.lin1.forward_inference(x);
        self.lin2.forward_inference(&gelu_matrix(&pre))
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let pre = self
            .cache_pre
            .take()
            .expect("FeedForward::backward before forward");
        let dact = self.lin2.backward(dy);
        let dpre = gelu_backward(&pre, &dact);
        self.lin1.backward(&dpre)
    }
}

impl HasParams for FeedForward {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_fault::FaultKind;
    use attnchecker::attention::{FaultSite, SectionToggles};
    use attnchecker::checked::CheckedMatrix;
    use attnchecker::report::AbftReport;

    #[test]
    fn shapes() {
        let mut rng = TensorRng::seed_from(1);
        let mut ffn = FeedForward::new("f", 8, 32, &mut rng);
        let x = rng.normal_matrix(5, 8, 1.0);
        let y = ffn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 8));
    }

    #[test]
    fn gradient_check_dx() {
        let mut rng = TensorRng::seed_from(2);
        let mut ffn = FeedForward::new("f", 4, 8, &mut rng);
        let x = rng.normal_matrix(2, 4, 1.0);
        let dy = rng.normal_matrix(2, 4, 1.0);
        let _ = ffn.forward(&x);
        let dx = ffn.backward(&dy);

        let loss = |f: &FeedForward, xx: &Matrix| -> f32 {
            let y = f.forward_inference(xx);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };
        let eps = 1e-2;
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss(&ffn, &xp) - loss(&ffn, &xm)) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 3e-2,
                    "dx ({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = TensorRng::seed_from(3);
        let mut ffn = FeedForward::new("f", 3, 6, &mut rng);
        let x = rng.normal_matrix(2, 3, 1.0);
        let dy = rng.normal_matrix(2, 3, 1.0);
        let _ = ffn.forward(&x);
        let _ = ffn.backward(&dy);

        let loss = |f: &FeedForward, xx: &Matrix| -> f32 {
            let y = f.forward_inference(xx);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };
        let eps = 1e-2;
        for r in 0..3 {
            for c in 0..6 {
                let mut fp = ffn.clone();
                fp.lin1.inner.w.value[(r, c)] += eps;
                let mut fm = ffn.clone();
                fm.lin1.inner.w.value[(r, c)] -= eps;
                let fd = (loss(&fp, &x) - loss(&fm, &x)) / (2.0 * eps);
                assert!(
                    (fd - ffn.lin1.inner.w.grad[(r, c)]).abs() < 3e-2,
                    "dW1 ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn param_count() {
        let mut rng = TensorRng::seed_from(4);
        let mut ffn = FeedForward::new("f", 4, 16, &mut rng);
        // 4×16 + 16 + 16×4 + 4 = 148
        assert_eq!(ffn.param_count(), 148);
    }

    fn guarded(
        ffn: &mut FeedForward,
        x: &Matrix,
        config: &ProtectionConfig,
        s_ffn: bool,
        hook: Option<attnchecker::attention::FaultHook<'_>>,
    ) -> (Matrix, AbftReport) {
        let mut report = AbftReport::default();
        let out = {
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles {
                    s_ffn,
                    ..SectionToggles::none()
                },
                hook,
                report: &mut report,
            };
            ffn.forward_guarded(x, config, &mut ctx)
        };
        (out, report)
    }

    #[test]
    fn guarded_fault_free_is_bit_identical_to_unprotected() {
        let mut rng = TensorRng::seed_from(5);
        let mut ffn = FeedForward::new("f", 6, 24, &mut rng);
        let x = rng.normal_matrix(5, 6, 1.0);
        let plain = ffn.forward_inference(&x);
        for s_ffn in [false, true] {
            let (y, report) = guarded(&mut ffn, &x, &ProtectionConfig::full(), s_ffn, None);
            assert_eq!(y, plain, "s_ffn={s_ffn}");
            assert!(report.is_quiet());
            assert_eq!(report.sections_checked, usize::from(s_ffn));
        }
    }

    #[test]
    fn both_gemm_sites_are_corrected_in_place() {
        let mut rng = TensorRng::seed_from(6);
        let mut ffn = FeedForward::new("f", 6, 24, &mut rng);
        let x = rng.normal_matrix(5, 6, 1.0);
        let plain = ffn.forward_inference(&x);
        for op in AttnOp::FFN {
            for kind in [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf] {
                let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
                    if site.op == op {
                        let (r, c) = (m.rows() / 2, m.cols() / 3);
                        let old = m.get(r, c);
                        m.set(r, c, kind.apply(old));
                    }
                };
                let (y, report) = guarded(
                    &mut ffn,
                    &x,
                    &ProtectionConfig::full(),
                    true,
                    Some(&mut hook),
                );
                assert_eq!(y, plain, "{op:?}/{kind:?}: must restore exact bits");
                assert!(report.correction_count() > 0, "{op:?}/{kind:?}");
                assert_eq!(report.unrecovered, 0, "{op:?}/{kind:?}");
                assert!(report
                    .corrections
                    .iter()
                    .all(|c| c.section == SectionId::FeedForward));
            }
        }
    }

    #[test]
    fn cached_activations_are_healed_for_backward() {
        let mut rng = TensorRng::seed_from(7);
        let mut clean = FeedForward::new("f", 4, 16, &mut rng);
        let mut faulty = clean.clone();
        let x = rng.normal_matrix(3, 4, 1.0);
        let dy = rng.normal_matrix(3, 4, 1.0);

        let (_, _) = guarded(&mut clean, &x, &ProtectionConfig::full(), true, None);
        let dx_clean = clean.backward(&dy);

        let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
            if site.op == AttnOp::Ffn1 {
                m.set(1, 5, f32::INFINITY);
            }
        };
        let (_, report) = guarded(
            &mut faulty,
            &x,
            &ProtectionConfig::full(),
            true,
            Some(&mut hook),
        );
        assert!(report.correction_count() > 0);
        let dx_faulty = faulty.backward(&dy);
        assert_eq!(dx_clean, dx_faulty, "backward must see healed activations");
        assert_eq!(clean.lin1.inner.w.grad, faulty.lin1.inner.w.grad);
    }
}
