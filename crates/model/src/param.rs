//! Learnable parameters with gradient and Adam-state storage, plus the
//! detached [`Grads`] buffer that tape-based backward passes write into.

use attn_tensor::Matrix;
use std::collections::HashMap;

/// A learnable tensor: value, accumulated gradient, and AdamW moments.
///
/// Biases are stored as `1 × n` matrices so every parameter flows through
/// the same optimizer and checkpoint paths.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Stable name used by checkpoints and debugging (e.g.
    /// `"block0.attn.wq"`).
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Matrix,
    /// AdamW first moment.
    pub m: Matrix,
    /// AdamW second moment.
    pub v: Matrix,
}

impl Param {
    /// Create a parameter from an initial value with zeroed grad/moments.
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Self {
            name: name.into(),
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Zero-initialised parameter of the given shape (bias convention).
    pub fn zeros(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        Self::new(name, Matrix::zeros(rows, cols))
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// True when every value element is finite — the trainer scans this
    /// after each optimizer step to recognise non-trainable states.
    pub fn is_finite(&self) -> bool {
        self.value.all_finite()
    }

    /// Accumulate `g` into the gradient.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, g: &Matrix) {
        self.grad.axpy(1.0, g);
    }

    /// Bias view: the first row of a `1 × n` parameter as a slice.
    pub fn bias(&self) -> &[f32] {
        self.value.row(0)
    }
}

/// A detached gradient buffer, keyed by parameter name.
///
/// Tape-based backward passes take the model by `&self` and accumulate
/// their parameter gradients here instead of mutating [`Param::grad`] in
/// place. That is what makes a training step data-parallel: each batch
/// item backpropagates into its own `Grads`, and the per-item buffers are
/// merged into the model afterwards in **fixed batch order**, so the
/// floating-point reduction sequence — and therefore every parameter bit —
/// is independent of how items were scheduled across threads.
#[derive(Debug, Clone, Default)]
pub struct Grads {
    map: HashMap<String, Matrix>,
}

impl Grads {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `g` into the named parameter's gradient slot.
    ///
    /// # Panics
    /// Panics if the same name is accumulated with mismatched shapes.
    pub fn accumulate(&mut self, name: &str, g: &Matrix) {
        match self.map.get_mut(name) {
            Some(m) => m.axpy(1.0, g),
            None => {
                self.map.insert(name.to_string(), g.clone());
            }
        }
    }

    /// Mutable access to the named gradient slot, created zeroed on first
    /// use — for scatter-style accumulation (embedding tables) that writes
    /// individual rows rather than whole matrices.
    pub fn matrix_mut(&mut self, name: &str, rows: usize, cols: usize) -> &mut Matrix {
        self.map
            .entry(name.to_string())
            .or_insert_with(|| Matrix::zeros(rows, cols))
    }

    /// Read a gradient slot (mainly for tests).
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.map.get(name)
    }

    /// True when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Add every buffered gradient into the owning model's [`Param::grad`]
    /// storage. Parameters are visited in the model's stable order, so
    /// merging several buffers one after another is a deterministic
    /// reduction.
    ///
    /// # Panics
    /// Panics if the buffer holds a name the model does not own (a
    /// misspelled parameter name in a backward pass).
    pub fn merge_into<M: HasParams + ?Sized>(mut self, model: &mut M) {
        model.visit_params(&mut |p| {
            if let Some(g) = self.map.remove(&p.name) {
                p.accumulate(&g);
            }
        });
        assert!(
            self.map.is_empty(),
            "gradients for unknown parameters: {:?}",
            self.map.keys().collect::<Vec<_>>()
        );
    }
}

/// Anything that owns parameters and can expose them to the optimizer and
/// checkpointer.
pub trait HasParams {
    /// Visit every parameter mutably, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zero all gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// True when all parameter values are finite.
    fn params_finite(&mut self) -> bool {
        let mut ok = true;
        self.visit_params(&mut |p| ok &= p.is_finite());
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_zeroed_state() {
        let p = Param::new("w", Matrix::full(2, 3, 1.5));
        assert_eq!(p.len(), 6);
        assert!(attn_tensor::float::all_exactly_zero(p.grad.data()));
        assert!(attn_tensor::float::all_exactly_zero(p.m.data()));
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::zeros("b", 1, 4);
        p.accumulate(&Matrix::full(1, 4, 2.0));
        p.accumulate(&Matrix::full(1, 4, 3.0));
        assert!(p.grad.data().iter().all(|&x| x == 5.0));
        p.zero_grad();
        assert!(attn_tensor::float::all_exactly_zero(p.grad.data()));
    }

    #[test]
    fn finite_scan() {
        let mut p = Param::new("w", Matrix::full(2, 2, 1.0));
        assert!(p.is_finite());
        p.value[(0, 1)] = f32::NAN;
        assert!(!p.is_finite());
    }

    struct Two {
        a: Param,
        b: Param,
    }

    impl HasParams for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    #[test]
    fn grads_accumulate_and_merge() {
        let mut g = Grads::new();
        g.accumulate("a", &Matrix::full(2, 2, 1.0));
        g.accumulate("a", &Matrix::full(2, 2, 2.0));
        g.matrix_mut("b", 1, 3).row_mut(0)[1] = 7.0;
        assert!(g.get("a").unwrap().data().iter().all(|&x| x == 3.0));
        let mut t = Two {
            a: Param::zeros("a", 2, 2),
            b: Param::zeros("b", 1, 3),
        };
        g.merge_into(&mut t);
        assert!(t.a.grad.data().iter().all(|&x| x == 3.0));
        assert_eq!(t.b.grad[(0, 1)], 7.0);
        assert_eq!(t.b.grad[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic]
    fn grads_merge_rejects_unknown_names() {
        let mut g = Grads::new();
        g.accumulate("nope", &Matrix::zeros(1, 1));
        let mut t = Two {
            a: Param::zeros("a", 2, 2),
            b: Param::zeros("b", 1, 3),
        };
        g.merge_into(&mut t);
    }

    #[test]
    fn has_params_helpers() {
        let mut t = Two {
            a: Param::zeros("a", 2, 2),
            b: Param::zeros("b", 1, 3),
        };
        assert_eq!(t.param_count(), 7);
        t.a.accumulate(&Matrix::full(2, 2, 1.0));
        t.zero_grads();
        assert!(attn_tensor::float::all_exactly_zero(t.a.grad.data()));
        assert!(t.params_finite());
        t.b.value[(0, 0)] = f32::INFINITY;
        assert!(!t.params_finite());
    }
}
