//! Transformer block: attention + FFN with residuals, in post-LN
//! (BERT/RoBERTa) or pre-LN (GPT-2/GPT-Neo) arrangement.
//!
//! One [`ForwardCtx`] flows through the whole block: the attention
//! sub-layer consumes the mask/toggles/hook for its three sections, and the
//! FFN sub-layer runs its own `S_FFN` guarded section off the same context,
//! so the entire block is protected end-to-end with a single threaded
//! state.

use crate::attn_layer::AttentionLayer;
use crate::ffn::FeedForward;
use crate::layernorm::LayerNorm;
use crate::param::{Grads, HasParams, Param};
use crate::tape::BlockTape;
use attn_tensor::guard::residual_add_checked;
use attn_tensor::rng::TensorRng;
use attn_tensor::{Matrix, OpGuard};
use attnchecker::config::ProtectionConfig;
use attnchecker::section::{ForwardCtx, GuardedSection};
use std::time::{Duration, Instant};

/// Residual/normalisation arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockArch {
    /// `LN(x + Attn(x))` then `LN(h + FFN(h))` — original transformer,
    /// used by BERT and RoBERTa.
    PostLn,
    /// `x + Attn(LN(x))` then `h + FFN(LN(h))` — GPT-2 family.
    PreLn,
}

/// One transformer block.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    /// Self-attention sub-layer.
    pub attn: AttentionLayer,
    /// Feed-forward sub-layer.
    pub ffn: FeedForward,
    /// Norm attached to the attention sub-layer.
    pub ln1: LayerNorm,
    /// Norm attached to the FFN sub-layer.
    pub ln2: LayerNorm,
    /// Residual arrangement.
    pub arch: BlockArch,
    /// Wall time of the attention sub-layer in the most recent forward —
    /// the model sums these into its Fig 7 "attention mechanism" timer.
    pub attn_time_of_last_forward: Duration,
    /// Wall time of the FFN sub-layer in the most recent forward (feeds the
    /// FFN-protection overhead column of the Fig 7 reproduction).
    pub ffn_time_of_last_forward: Duration,
    tape: Option<BlockTape>,
}

impl TransformerBlock {
    /// Build a block.
    pub fn new(
        name: &str,
        hidden: usize,
        heads: usize,
        ffn_inner: usize,
        arch: BlockArch,
        protection: ProtectionConfig,
        rng: &mut TensorRng,
    ) -> Self {
        Self {
            attn: AttentionLayer::new(&format!("{name}.attn"), hidden, heads, protection, rng),
            ffn: FeedForward::new(&format!("{name}.ffn"), hidden, ffn_inner, rng),
            ln1: LayerNorm::new(&format!("{name}.ln1"), hidden, 1e-5),
            ln2: LayerNorm::new(&format!("{name}.ln2"), hidden, 1e-5),
            arch,
            attn_time_of_last_forward: Duration::ZERO,
            ffn_time_of_last_forward: Duration::ZERO,
            tape: None,
        }
    }

    /// Stateless forward pass: returns the output and the block's
    /// activation tape. `ctx` flows through both protected sub-layers.
    pub fn forward_tape(&self, x: &Matrix, ctx: &mut ForwardCtx<'_, '_>) -> (Matrix, BlockTape) {
        let protection = self.attn.protection;
        let op_guard = GuardedSection::guard_step(&protection);
        let out = match self.arch {
            BlockArch::PostLn => {
                let t0 = Instant::now();
                let (a, attn) = self.attn.forward_tape(x, ctx);
                let attn_time = t0.elapsed();
                let sum1 = residual_add_checked(x, &a, &op_guard);
                let (h, ln1) = self.ln1.forward_tape_checked(&sum1, &op_guard);
                let t1 = Instant::now();
                let (f, ffn) = self.ffn.forward_guarded_tape(&h, &protection, ctx);
                let ffn_time = t1.elapsed();
                let sum2 = residual_add_checked(&h, &f, &op_guard);
                let (y, ln2) = self.ln2.forward_tape_checked(&sum2, &op_guard);
                (
                    y,
                    BlockTape {
                        attn,
                        ffn,
                        ln1,
                        ln2,
                        attn_time,
                        ffn_time,
                    },
                )
            }
            BlockArch::PreLn => {
                let (n1, ln1) = self.ln1.forward_tape_checked(x, &op_guard);
                let t0 = Instant::now();
                let (a, attn) = self.attn.forward_tape(&n1, ctx);
                let attn_time = t0.elapsed();
                let h = residual_add_checked(x, &a, &op_guard);
                let (n2, ln2) = self.ln2.forward_tape_checked(&h, &op_guard);
                let t1 = Instant::now();
                let (f, ffn) = self.ffn.forward_guarded_tape(&n2, &protection, ctx);
                let ffn_time = t1.elapsed();
                (
                    residual_add_checked(&h, &f, &op_guard),
                    BlockTape {
                        attn,
                        ffn,
                        ln1,
                        ln2,
                        attn_time,
                        ffn_time,
                    },
                )
            }
        };
        ctx.report.absorb_op_guard(op_guard.take_stats());
        out
    }

    /// Stateless backward over a tape; returns `dx`.
    pub fn backward_tape(&self, dy: &Matrix, tape: &BlockTape, grads: &mut Grads) -> Matrix {
        self.backward_tape_checked(dy, tape, grads, &OpGuard::off())
    }

    /// Stateless backward with the non-GEMM ops guarded: LayerNorm and
    /// GELU backward screens plus residual gradient-sum transport, all
    /// healing by exact recompute on violation.
    pub fn backward_tape_checked(
        &self,
        dy: &Matrix,
        tape: &BlockTape,
        grads: &mut Grads,
        g: &OpGuard,
    ) -> Matrix {
        match self.arch {
            BlockArch::PostLn => {
                // y = LN2(h + FFN(h)), h = LN1(x + Attn(x))
                let dsum2 = self.ln2.backward_tape_checked(dy, &tape.ln2, grads, g);
                let dh_f = self.ffn.backward_tape_checked(&dsum2, &tape.ffn, grads, g);
                let dh = residual_add_checked(&dsum2, &dh_f, g);
                let dsum1 = self.ln1.backward_tape_checked(&dh, &tape.ln1, grads, g);
                let dx_a = self
                    .attn
                    .backward_tape_checked(&dsum1, &tape.attn, grads, g);
                residual_add_checked(&dsum1, &dx_a, g)
            }
            BlockArch::PreLn => {
                // y = h + FFN(LN2(h)), h = x + Attn(LN1(x))
                let dn2 = self.ffn.backward_tape_checked(dy, &tape.ffn, grads, g);
                let dh_ln = self.ln2.backward_tape_checked(&dn2, &tape.ln2, grads, g);
                let dh = residual_add_checked(dy, &dh_ln, g);
                let dn1 = self.attn.backward_tape_checked(&dh, &tape.attn, grads, g);
                let dx_ln = self.ln1.backward_tape_checked(&dn1, &tape.ln1, grads, g);
                residual_add_checked(&dh, &dx_ln, g)
            }
        }
    }

    /// Forward pass caching the tape for [`Self::backward`]; `ctx` flows
    /// through both protected sub-layers.
    pub fn forward(&mut self, x: &Matrix, ctx: &mut ForwardCtx<'_, '_>) -> Matrix {
        let (y, tape) = self.forward_tape(x, ctx);
        self.attn_time_of_last_forward = tape.attn_time;
        self.ffn_time_of_last_forward = tape.ffn_time;
        self.tape = Some(tape);
        y
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let tape = self
            .tape
            .take()
            .expect("TransformerBlock::backward before forward");
        let mut grads = Grads::new();
        let dx = self.backward_tape(dy, &tape, &mut grads);
        grads.merge_into(self);
        dx
    }
}

impl HasParams for TransformerBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.ffn.visit_params(f);
        self.ln1.visit_params(f);
        self.ln2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attnchecker::attention::SectionToggles;
    use attnchecker::report::AbftReport;

    fn block(arch: BlockArch, rng: &mut TensorRng) -> TransformerBlock {
        TransformerBlock::new("b", 8, 2, 16, arch, ProtectionConfig::off(), rng)
    }

    fn forward_unprotected(
        b: &mut TransformerBlock,
        x: &Matrix,
        report: &mut AbftReport,
    ) -> Matrix {
        let mut ctx = ForwardCtx {
            mask: None,
            toggles: SectionToggles::none(),
            hook: None,
            report,
        };
        b.forward(x, &mut ctx)
    }

    fn run_loss(b: &TransformerBlock, x: &Matrix, dy: &Matrix) -> f32 {
        // Clone so caches do not leak between finite-difference probes.
        let mut c = b.clone();
        let mut report = AbftReport::default();
        let y = forward_unprotected(&mut c, x, &mut report);
        y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
    }

    fn grad_check(arch: BlockArch) {
        let mut rng = TensorRng::seed_from(7);
        let mut b = block(arch, &mut rng);
        let x = rng.normal_matrix(4, 8, 0.6);
        let dy = rng.normal_matrix(4, 8, 1.0);
        let mut report = AbftReport::default();
        let _ = forward_unprotected(&mut b, &x, &mut report);
        let dx = b.backward(&dy);

        let eps = 1e-2;
        for r in 0..4 {
            for c in 0..8 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (run_loss(&b, &xp, &dy) - run_loss(&b, &xm, &dy)) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 8e-2,
                    "{arch:?} dx ({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn post_ln_gradient_check() {
        grad_check(BlockArch::PostLn);
    }

    #[test]
    fn pre_ln_gradient_check() {
        grad_check(BlockArch::PreLn);
    }

    #[test]
    fn shapes_preserved() {
        let mut rng = TensorRng::seed_from(8);
        for arch in [BlockArch::PostLn, BlockArch::PreLn] {
            let mut b = block(arch, &mut rng);
            let x = rng.normal_matrix(5, 8, 1.0);
            let mut report = AbftReport::default();
            let y = forward_unprotected(&mut b, &x, &mut report);
            assert_eq!((y.rows(), y.cols()), (5, 8));
        }
    }

    #[test]
    fn pre_ln_residual_passes_identity_at_zero_weights() {
        // With all weights zeroed the block must reduce to the identity:
        // attention and FFN contribute 0, residuals pass x through.
        let mut rng = TensorRng::seed_from(9);
        let mut b = block(BlockArch::PreLn, &mut rng);
        b.visit_params(&mut |p| {
            if !p.name.contains("gamma") {
                p.value.data_mut().fill(0.0);
            }
        });
        let x = rng.normal_matrix(3, 8, 1.0);
        let mut report = AbftReport::default();
        let y = forward_unprotected(&mut b, &x, &mut report);
        assert!(y.approx_eq(&x, 1e-5, 1e-5));
    }

    #[test]
    fn protected_block_matches_unprotected_when_fault_free() {
        let mut rng = TensorRng::seed_from(10);
        for arch in [BlockArch::PostLn, BlockArch::PreLn] {
            let mut off = block(arch, &mut rng);
            let mut on = off.clone();
            on.attn.protection = ProtectionConfig::full();
            let x = rng.normal_matrix(5, 8, 0.7);
            let mut r_off = AbftReport::default();
            let y_off = forward_unprotected(&mut off, &x, &mut r_off);
            let mut r_on = AbftReport::default();
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut r_on,
            };
            let y_on = on.forward(&x, &mut ctx);
            assert_eq!(y_on, y_off, "{arch:?}: protection must be transparent");
            assert!(r_on.is_quiet());
            // 3 attention sections + 1 FFN section ran.
            assert_eq!(r_on.sections_checked, 4);
        }
    }
}
