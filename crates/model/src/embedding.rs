//! Token + learned positional embeddings.

use crate::param::{Grads, HasParams, Param};
use attn_tensor::guard::verify_rowsum_add;
use attn_tensor::rng::TensorRng;
use attn_tensor::{Matrix, OpGuard};

/// Token and position embedding table (the transformer input layer).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Token table, `vocab × hidden`.
    pub tok: Param,
    /// Position table, `max_seq × hidden`.
    pub pos: Param,
    /// Positions start at this offset (RoBERTa reserves low position ids
    /// for padding; BERT/GPT start at 0).
    pub pos_offset: usize,
    cache_tokens: Option<Vec<usize>>,
}

impl Embedding {
    /// Truncated-normal initialised tables (std 0.02, transformer
    /// convention).
    pub fn new(
        name: &str,
        vocab: usize,
        max_seq: usize,
        hidden: usize,
        pos_offset: usize,
        rng: &mut TensorRng,
    ) -> Self {
        Self {
            tok: Param::new(
                format!("{name}.tok"),
                rng.trunc_normal_matrix(vocab, hidden, 0.02),
            ),
            pos: Param::new(
                format!("{name}.pos"),
                rng.trunc_normal_matrix(max_seq + pos_offset, hidden, 0.02),
            ),
            pos_offset,
            cache_tokens: None,
        }
    }

    /// Stateless embed of a token sequence into a `seq × hidden` matrix.
    /// The "tape" is the token sequence itself, which the caller already
    /// owns, so nothing extra is returned.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary ids or sequences longer than the
    /// position table.
    pub fn forward_tape(&self, tokens: &[usize]) -> Matrix {
        self.forward_checked(tokens, &OpGuard::off())
    }

    /// Guarded embed: each gathered row is screened against the f64 sum
    /// transport `Σ tok_row + Σ pos_row ≈ Σ out_row` and healed
    /// element-wise from the (at-rest) tables on violation.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary ids or sequences longer than the
    /// position table.
    pub fn forward_checked(&self, tokens: &[usize], g: &OpGuard) -> Matrix {
        let hidden = self.tok.value.cols();
        let mut out = Matrix::zeros(tokens.len(), hidden);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.tok.value.rows(), "token id {t} out of vocab");
            let p = i + self.pos_offset;
            assert!(p < self.pos.value.rows(), "sequence too long");
            let dst = out.row_mut(i);
            for (d, (&tv, &pv)) in dst
                .iter_mut()
                .zip(self.tok.value.row(t).iter().zip(self.pos.value.row(p)))
            {
                *d = tv + pv;
            }
            verify_rowsum_add(self.tok.value.row(t), self.pos.value.row(p), dst, g);
        }
        out
    }

    /// Stateless backward: scatter-add `dy` rows into the token and
    /// position gradient slots of `grads`. One table at a time, so each
    /// gradient slot is looked up once instead of once per token.
    pub fn backward_tape(&self, dy: &Matrix, tokens: &[usize], grads: &mut Grads) {
        assert_eq!(dy.rows(), tokens.len());
        let dtok = grads.matrix_mut(&self.tok.name, self.tok.value.rows(), self.tok.value.cols());
        for (i, &t) in tokens.iter().enumerate() {
            for (g, &d) in dtok.row_mut(t).iter_mut().zip(dy.row(i)) {
                *g += d;
            }
        }
        let dpos = grads.matrix_mut(&self.pos.name, self.pos.value.rows(), self.pos.value.cols());
        for i in 0..tokens.len() {
            let p = i + self.pos_offset;
            for (g, &d) in dpos.row_mut(p).iter_mut().zip(dy.row(i)) {
                *g += d;
            }
        }
    }

    /// Embed a token sequence, caching the tokens for [`Self::backward`].
    ///
    /// # Panics
    /// Panics on out-of-vocabulary ids or sequences longer than the
    /// position table.
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        let out = self.forward_tape(tokens);
        self.cache_tokens = Some(tokens.to_vec());
        out
    }

    /// Backward: scatter-add `dy` rows into the token and position tables.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) {
        let tokens = self
            .cache_tokens
            .take()
            .expect("Embedding::backward before forward");
        let mut grads = Grads::new();
        self.backward_tape(dy, &tokens, &mut grads);
        grads.merge_into(self);
    }
}

impl HasParams for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.tok);
        f(&mut self.pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_adds_token_and_position() {
        let mut rng = TensorRng::seed_from(1);
        let mut emb = Embedding::new("e", 10, 8, 4, 0, &mut rng);
        let x = emb.forward(&[3, 7]);
        for d in 0..4 {
            assert!((x[(0, d)] - emb.tok.value[(3, d)] - emb.pos.value[(0, d)]).abs() < 1e-6);
            assert!((x[(1, d)] - emb.tok.value[(7, d)] - emb.pos.value[(1, d)]).abs() < 1e-6);
        }
    }

    #[test]
    fn position_offset_shifts_rows() {
        let mut rng = TensorRng::seed_from(2);
        let mut emb = Embedding::new("e", 10, 8, 4, 2, &mut rng);
        let x = emb.forward(&[0]);
        for d in 0..4 {
            assert!((x[(0, d)] - emb.tok.value[(0, d)] - emb.pos.value[(2, d)]).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_scatters_including_repeats() {
        let mut rng = TensorRng::seed_from(3);
        let mut emb = Embedding::new("e", 10, 8, 4, 0, &mut rng);
        let _ = emb.forward(&[5, 5, 2]);
        let dy = Matrix::full(3, 4, 1.0);
        emb.backward(&dy);
        // Token 5 appears twice → gradient 2, token 2 once → 1.
        assert!(emb.tok.grad.row(5).iter().all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(emb.tok.grad.row(2).iter().all(|&g| (g - 1.0).abs() < 1e-6));
        assert!(attn_tensor::float::all_exactly_zero(emb.tok.grad.row(0)));
        // Each position appears once.
        for p in 0..3 {
            assert!(emb.pos.grad.row(p).iter().all(|&g| (g - 1.0).abs() < 1e-6));
        }
    }

    #[test]
    #[should_panic]
    fn oov_token_panics() {
        let mut rng = TensorRng::seed_from(4);
        let mut emb = Embedding::new("e", 10, 8, 4, 0, &mut rng);
        let _ = emb.forward(&[11]);
    }
}
