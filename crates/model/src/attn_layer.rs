//! Multi-head attention layer: ATTNChecker-protected forward (from the
//! `attnchecker` crate) plus a hand-written backward pass.
//!
//! The paper integrates ATTNChecker into the *forward* attention GEMMs; the
//! backward pass consumes the cached `Q`/`K`/`V`/`AP`/`CL` activations —
//! which the protected forward has already healed — so corrected training
//! proceeds exactly as a fault-free run (the Fig 6 property).

use crate::param::{Grads, HasParams, Param};
use attn_tensor::gemm::{matmul, matmul_nt, matmul_tn};
use attn_tensor::guard::softmax_rows_backward_checked;
use attn_tensor::ops::col_sums;
use attn_tensor::rng::TensorRng;
use attn_tensor::{Matrix, OpGuard};
use attnchecker::attention::{AttentionWeights, AttnCache, ProtectedAttention, SectionToggles};
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;
use attnchecker::section::ForwardCtx;

/// Attention layer owning its parameters and protection policy.
#[derive(Debug, Clone)]
pub struct AttentionLayer {
    /// Query projection parameter (`hidden × hidden`).
    pub wq: Param,
    /// Key projection parameter.
    pub wk: Param,
    /// Value projection parameter.
    pub wv: Param,
    /// Output projection parameter.
    pub wo: Param,
    /// Query bias (`1 × hidden`).
    pub bq: Param,
    /// Key bias.
    pub bk: Param,
    /// Value bias.
    pub bv: Param,
    /// Output bias.
    pub bo: Param,
    /// Head count.
    pub heads: usize,
    /// Protection policy (strategy + thresholds; per-execution toggles come
    /// from the trainer's frequency gates).
    pub protection: ProtectionConfig,
    cache: Option<AttnCache>,
}

impl AttentionLayer {
    /// Xavier-initialised attention layer.
    pub fn new(
        name: &str,
        hidden: usize,
        heads: usize,
        protection: ProtectionConfig,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(heads > 0 && hidden.is_multiple_of(heads));
        Self {
            wq: Param::new(format!("{name}.wq"), rng.xavier_matrix(hidden, hidden)),
            wk: Param::new(format!("{name}.wk"), rng.xavier_matrix(hidden, hidden)),
            wv: Param::new(format!("{name}.wv"), rng.xavier_matrix(hidden, hidden)),
            wo: Param::new(format!("{name}.wo"), rng.xavier_matrix(hidden, hidden)),
            bq: Param::zeros(format!("{name}.bq"), 1, hidden),
            bk: Param::zeros(format!("{name}.bk"), 1, hidden),
            bv: Param::zeros(format!("{name}.bv"), 1, hidden),
            bo: Param::zeros(format!("{name}.bo"), 1, hidden),
            heads,
            protection,
            cache: None,
        }
    }

    /// Model width.
    pub fn hidden(&self) -> usize {
        self.wq.value.rows()
    }

    /// Snapshot the parameters into the `attnchecker` weight struct.
    pub fn weights_snapshot(&self) -> AttentionWeights {
        AttentionWeights {
            hidden: self.hidden(),
            heads: self.heads,
            wq: self.wq.value.clone(),
            wk: self.wk.value.clone(),
            wv: self.wv.value.clone(),
            wo: self.wo.value.clone(),
            bq: self.bq.bias().to_vec(),
            bk: self.bk.bias().to_vec(),
            bv: self.bv.bias().to_vec(),
            bo: self.bo.bias().to_vec(),
        }
    }

    /// Stateless protected forward pass: returns the output and the
    /// activation tape (post-correction when protection ran). `ctx`
    /// carries the mask, per-execution section toggles, the
    /// fault-injection hook, and the report.
    pub fn forward_tape(&self, x: &Matrix, ctx: &mut ForwardCtx<'_, '_>) -> (Matrix, AttnCache) {
        let attn = ProtectedAttention::new(self.weights_snapshot(), self.protection);
        let out = attn.forward_ctx(x, ctx);
        (out.output, out.cache)
    }

    /// Protected forward pass caching the tape for [`Self::backward`].
    pub fn forward(&mut self, x: &Matrix, ctx: &mut ForwardCtx<'_, '_>) -> Matrix {
        let (y, cache) = self.forward_tape(x, ctx);
        self.cache = Some(cache);
        y
    }

    /// Unprotected, cache-free forward for inference/timing.
    pub fn forward_inference(&self, x: &Matrix, mask: Option<&Matrix>) -> Matrix {
        let attn = ProtectedAttention::new(self.weights_snapshot(), ProtectionConfig::off());
        let mut report = AbftReport::default();
        let mut ctx = ForwardCtx {
            mask,
            toggles: SectionToggles::none(),
            hook: None,
            report: &mut report,
        };
        attn.forward_ctx(x, &mut ctx).output
    }

    /// Stateless backward over a tape; returns `dx` and writes all eight
    /// parameter gradients into `grads`.
    pub fn backward_tape(&self, dy: &Matrix, cache: &AttnCache, grads: &mut Grads) -> Matrix {
        self.backward_tape_checked(dy, cache, grads, &OpGuard::off())
    }

    /// Stateless backward with a guarded softmax Jacobian product: each
    /// per-head `dscores` is screened (rows of the Jacobian product sum
    /// to ~0) and healed by exact recompute on violation.
    pub fn backward_tape_checked(
        &self,
        dy: &Matrix,
        cache: &AttnCache,
        grads: &mut Grads,
        g: &OpGuard,
    ) -> Matrix {
        let hidden = self.hidden();
        let heads = self.heads;
        let d = hidden / heads;
        let seq = cache.x.rows();
        let scale = 1.0 / (d as f32).sqrt();

        // ---- output projection: O = CL·W_O + b_O
        grads.accumulate(&self.wo.name, &matmul_tn(&cache.cl, dy));
        grads.accumulate(&self.bo.name, &Matrix::from_vec(1, hidden, col_sums(dy)));
        let dcl = matmul_nt(dy, &self.wo.value);

        // ---- per-head attention core
        let mut dq = Matrix::zeros(seq, hidden);
        let mut dk = Matrix::zeros(seq, hidden);
        let mut dv = Matrix::zeros(seq, hidden);
        for h in 0..heads {
            let cols = h * d..(h + 1) * d;
            let dcl_h = dcl.submatrix(0, seq, cols.start, cols.end);
            let v_h = cache.v.submatrix(0, seq, cols.start, cols.end);
            let q_h = cache.q.submatrix(0, seq, cols.start, cols.end);
            let k_h = cache.k.submatrix(0, seq, cols.start, cols.end);
            let ap_h = &cache.ap[h];

            // CL_h = AP_h · V_h
            let dap = matmul_nt(&dcl_h, &v_h);
            let dv_h = matmul_tn(ap_h, &dcl_h);

            // AP = softmax(scores); scores = (Q·Kᵀ)·scale + mask
            let dscores = softmax_rows_backward_checked(ap_h, &dap, g);
            let dqk = dscores.scaled(scale);

            // QKᵀ term
            let dq_h = matmul(&dqk, &k_h);
            let dk_h = matmul_tn(&dqk, &q_h);

            for r in 0..seq {
                dq.row_mut(r)[cols.clone()].copy_from_slice(dq_h.row(r));
                dk.row_mut(r)[cols.clone()].copy_from_slice(dk_h.row(r));
                dv.row_mut(r)[cols.clone()].copy_from_slice(dv_h.row(r));
            }
        }

        // ---- input projections: Q = X·W_Q + b_Q etc.
        grads.accumulate(&self.wq.name, &matmul_tn(&cache.x, &dq));
        grads.accumulate(&self.wk.name, &matmul_tn(&cache.x, &dk));
        grads.accumulate(&self.wv.name, &matmul_tn(&cache.x, &dv));
        grads.accumulate(&self.bq.name, &Matrix::from_vec(1, hidden, col_sums(&dq)));
        grads.accumulate(&self.bk.name, &Matrix::from_vec(1, hidden, col_sums(&dk)));
        grads.accumulate(&self.bv.name, &Matrix::from_vec(1, hidden, col_sums(&dv)));

        let mut dx = matmul_nt(&dq, &self.wq.value);
        dx.axpy(1.0, &matmul_nt(&dk, &self.wk.value));
        dx.axpy(1.0, &matmul_nt(&dv, &self.wv.value));
        dx
    }

    /// Backward pass; returns `dx` and accumulates all eight parameter
    /// gradients.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("AttentionLayer::backward before forward");
        let mut grads = Grads::new();
        let dx = self.backward_tape(dy, &cache, &mut grads);
        grads.merge_into(self);
        dx
    }
}

impl HasParams for AttentionLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
        f(&mut self.bq);
        f(&mut self.bk);
        f(&mut self.bv);
        f(&mut self.bo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::ops::causal_mask;

    fn fwd(
        layer: &mut AttentionLayer,
        x: &Matrix,
        toggles: SectionToggles,
        mask: Option<&Matrix>,
        report: &mut AbftReport,
    ) -> Matrix {
        let mut ctx = ForwardCtx {
            mask,
            toggles,
            hook: None,
            report,
        };
        layer.forward(x, &mut ctx)
    }

    fn loss_of(layer: &AttentionLayer, x: &Matrix, dy: &Matrix, mask: Option<&Matrix>) -> f32 {
        let y = layer.forward_inference(x, mask);
        y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = TensorRng::seed_from(1);
        let mut layer = AttentionLayer::new("a", 16, 4, ProtectionConfig::full(), &mut rng);
        let x = rng.normal_matrix(6, 16, 0.5);
        let mut report = AbftReport::default();
        let y = fwd(&mut layer, &x, SectionToggles::all(), None, &mut report);
        assert_eq!((y.rows(), y.cols()), (6, 16));
        assert!(report.is_quiet());
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = TensorRng::seed_from(2);
        let mut layer = AttentionLayer::new("a", 8, 2, ProtectionConfig::off(), &mut rng);
        let x = rng.normal_matrix(4, 8, 0.7);
        let dy = rng.normal_matrix(4, 8, 1.0);
        let mut report = AbftReport::default();
        let _ = fwd(&mut layer, &x, SectionToggles::all(), None, &mut report);
        let dx = layer.backward(&dy);

        let eps = 1e-2;
        for r in 0..4 {
            for c in 0..8 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss_of(&layer, &xp, &dy, None) - loss_of(&layer, &xm, &dy, None))
                    / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 5e-2,
                    "dx ({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn gradient_check_wq_and_wo() {
        let mut rng = TensorRng::seed_from(3);
        let mut layer = AttentionLayer::new("a", 6, 2, ProtectionConfig::off(), &mut rng);
        let x = rng.normal_matrix(3, 6, 0.7);
        let dy = rng.normal_matrix(3, 6, 1.0);
        let mut report = AbftReport::default();
        let _ = fwd(&mut layer, &x, SectionToggles::all(), None, &mut report);
        let _ = layer.backward(&dy);

        let eps = 1e-2;
        for r in 0..6 {
            for c in 0..6 {
                for (pick, grad) in [(0usize, &layer.wq.grad), (1, &layer.wo.grad)] {
                    let mut lp = layer.clone();
                    let mut lm = layer.clone();
                    match pick {
                        0 => {
                            lp.wq.value[(r, c)] += eps;
                            lm.wq.value[(r, c)] -= eps;
                        }
                        _ => {
                            lp.wo.value[(r, c)] += eps;
                            lm.wo.value[(r, c)] -= eps;
                        }
                    }
                    let fd =
                        (loss_of(&lp, &x, &dy, None) - loss_of(&lm, &x, &dy, None)) / (2.0 * eps);
                    assert!(
                        (fd - grad[(r, c)]).abs() < 6e-2,
                        "param {pick} ({r},{c}): fd {fd} vs {}",
                        grad[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn gradient_check_with_causal_mask() {
        let mut rng = TensorRng::seed_from(4);
        let mut layer = AttentionLayer::new("a", 8, 2, ProtectionConfig::off(), &mut rng);
        let x = rng.normal_matrix(4, 8, 0.7);
        let dy = rng.normal_matrix(4, 8, 1.0);
        let mask = causal_mask(4);
        let mut report = AbftReport::default();
        let _ = fwd(
            &mut layer,
            &x,
            SectionToggles::none(),
            Some(&mask),
            &mut report,
        );
        let dx = layer.backward(&dy);

        let eps = 1e-2;
        for r in 0..4 {
            for c in 0..8 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss_of(&layer, &xp, &dy, Some(&mask))
                    - loss_of(&layer, &xm, &dy, Some(&mask)))
                    / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 5e-2,
                    "masked dx ({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn protected_and_unprotected_backward_agree_when_fault_free() {
        let mut rng = TensorRng::seed_from(5);
        let mut a = AttentionLayer::new("a", 8, 2, ProtectionConfig::full(), &mut rng);
        let mut b = a.clone();
        b.protection = ProtectionConfig::off();
        let x = rng.normal_matrix(4, 8, 0.7);
        let dy = rng.normal_matrix(4, 8, 1.0);
        let mut r1 = AbftReport::default();
        let mut r2 = AbftReport::default();
        let _ = fwd(&mut a, &x, SectionToggles::all(), None, &mut r1);
        let _ = fwd(&mut b, &x, SectionToggles::none(), None, &mut r2);
        let dxa = a.backward(&dy);
        let dxb = b.backward(&dy);
        assert!(dxa.approx_eq(&dxb, 1e-3, 1e-3));
        assert!(a.wq.grad.approx_eq(&b.wq.grad, 1e-3, 1e-3));
    }

    #[test]
    fn param_count_is_4h2_plus_4h() {
        let mut rng = TensorRng::seed_from(6);
        let mut layer = AttentionLayer::new("a", 8, 2, ProtectionConfig::full(), &mut rng);
        assert_eq!(layer.param_count(), 4 * 64 + 4 * 8);
    }
}
