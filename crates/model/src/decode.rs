//! Autoregressive decode front-end for the causal architectures.
//!
//! [`DecodeState`] holds one session's per-layer [`AttnKvCache`]s;
//! [`TransformerModel::prefill`] runs the full protected forward over a
//! prompt and seeds the caches from its (post-correction) K/V tape;
//! [`TransformerModel::decode_step`] pushes one token through the per-row
//! image of the block pipeline — row-local layer norms, the single-query
//! guarded attention of `attnchecker::decode`, the guarded FFN on a
//! one-row matrix — and returns next-token logits.
//!
//! **Parity contract.** Every per-row computation follows the same
//! blocked accumulation contract as its full-forward counterpart, so the
//! logits of `decode_step` after any prefill/decode split are
//! bit-identical to [`TransformerModel::forward_tape`] over the grown
//! prefix with the same protection config — fault-free *and* after a
//! corrected injection. Decoding is only defined for the causal decoders
//! (GPT-2 / GPT-Neo): a bidirectional encoder re-reads the whole sequence
//! at every position, so a KV cache cannot represent it.

use crate::block::BlockArch;
use crate::model::{InjectionSpec, ModelArch, TransformerModel};
use attn_tensor::guard::{residual_add_checked, verify_rowsum_add};
use attn_tensor::ops::MASK_NEG;
use attn_tensor::Matrix;
use attnchecker::attention::{FaultSite, SectionToggles};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::decode::{
    decode_step as attn_decode_step, AttentionWeightsRef, AttnKvCache, ColdKvCache,
};
use attnchecker::report::AbftReport;
use attnchecker::section::{ForwardCtx, GuardedSection};

/// One decode session's model-side state: per-layer KV caches plus the
/// number of consumed tokens. A state is either **live** (per-layer
/// [`AttnKvCache`]s on the hot arena) or **parked** (per-layer
/// [`ColdKvCache`] images — see [`TransformerModel::park_state`]); only a
/// live state can decode.
#[derive(Debug)]
pub struct DecodeState {
    layers: Vec<AttnKvCache>,
    cold: Vec<ColdKvCache>,
    pos: usize,
}

impl DecodeState {
    /// Tokens consumed so far (prompt + decoded).
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the state is parked (cold, memory-evicted).
    #[inline]
    pub fn is_parked(&self) -> bool {
        !self.cold.is_empty()
    }

    /// Per-layer caches (read access, e.g. for diagnostics). Empty while
    /// parked.
    pub fn layer_caches(&self) -> &[AttnKvCache] {
        &self.layers
    }

    /// Per-layer cold images (mutable — tests inject at-rest faults).
    /// Empty while live.
    pub fn cold_layers_mut(&mut self) -> &mut [ColdKvCache] {
        &mut self.cold
    }

    /// Approximate resident bytes of a parked state's images.
    pub fn cold_bytes(&self) -> usize {
        self.cold.iter().map(ColdKvCache::approx_bytes).sum()
    }
}

impl TransformerModel {
    /// Does this architecture support KV-cached autoregressive decoding?
    pub fn supports_decode(&self) -> bool {
        matches!(self.config.arch, ModelArch::Gpt2 | ModelArch::GptNeo)
    }

    /// Fresh decode state for this model (empty caches, position 0).
    /// Caches maintain checksums unless protection is hard-off.
    ///
    /// # Panics
    /// Panics for non-causal architectures.
    pub fn new_decode_state(&self) -> DecodeState {
        assert!(
            self.supports_decode(),
            "KV-cached decode requires a causal architecture (GPT-2 / GPT-Neo)"
        );
        DecodeState {
            layers: self
                .blocks
                .iter()
                .map(|b| {
                    AttnKvCache::new(
                        self.config.hidden,
                        self.config.heads,
                        !b.attn.protection.is_off(),
                    )
                })
                .collect(),
            cold: Vec::new(),
            pos: 0,
        }
    }

    /// Verify-on-move **park**: consume `state`'s live caches into cold
    /// per-layer images, verifying every KV block/row against its
    /// checksums on the way out (using each layer's own ABFT config).
    /// Damage found is corrected and recorded in `report`. No-op if the
    /// state is already parked.
    pub fn park_state(&self, state: &mut DecodeState, report: &mut AbftReport) {
        if state.is_parked() {
            return;
        }
        state.cold = state
            .layers
            .drain(..)
            .zip(&self.blocks)
            .map(|(cache, b)| cache.park(&b.attn.protection.abft, report))
            .collect();
    }

    /// Verify-on-move **unpark**: rebuild `state`'s live caches from the
    /// cold images, verifying them first — damage acquired at rest is
    /// corrected before any row rejoins the hot path. A fault-free
    /// park/unpark round trip leaves the decode stream bit-identical to
    /// never having parked. No-op if the state is live.
    pub fn unpark_state(&self, state: &mut DecodeState, report: &mut AbftReport) {
        if !state.is_parked() {
            return;
        }
        state.layers = state
            .cold
            .drain(..)
            .zip(&self.blocks)
            .map(|(cold, b)| cold.unpark(&b.attn.protection.abft, report))
            .collect();
    }

    /// The single mask row of token `row` over a `len`-long prefix for
    /// block `layer` — row `row` of [`Self::mask_for_layer`] restricted to
    /// `len` columns, produced without materialising the full matrix.
    pub fn mask_row_for_layer(&self, layer: usize, row: usize, len: usize) -> Matrix {
        let local = self.config.arch == ModelArch::GptNeo && !layer.is_multiple_of(2);
        let w = self.config.local_window;
        Matrix::from_fn(1, len, |_, c| {
            if c > row || (local && row >= c + w) {
                MASK_NEG
            } else {
                0.0
            }
        })
    }

    /// Run the full protected forward over `tokens` and seed `state`'s
    /// caches from the (post-correction) K/V activations, so subsequent
    /// [`Self::decode_step`]s continue bit-identically to having decoded
    /// the prompt token by token. Returns the next-token logits
    /// (`1 × num_classes`).
    ///
    /// # Panics
    /// Panics when `state` is not fresh, `tokens` is empty, or the
    /// architecture does not decode.
    pub fn prefill(
        &self,
        tokens: &[usize],
        state: &mut DecodeState,
        toggles: SectionToggles,
        report: &mut AbftReport,
    ) -> Matrix {
        assert!(self.supports_decode(), "prefill: non-causal architecture");
        assert_eq!(state.pos, 0, "prefill: state already holds tokens");
        assert!(!tokens.is_empty(), "prefill: empty prompt");
        let (logits, tape) = self.forward_tape(tokens, toggles, None, report);
        for (cache, bt) in state.layers.iter_mut().zip(&tape.blocks) {
            cache.seed(&bt.attn.k, &bt.attn.v);
        }
        state.pos = tokens.len();
        logits
    }

    /// Decode one token at position `state.pos()`: append it to every
    /// layer's KV cache and return the next-token logits
    /// (`1 × num_classes`), bit-identical to re-running the full protected
    /// forward over the grown prefix. `inject` optionally plants one fault
    /// at a decode-time GEMM site, exactly like the training forward's
    /// injection plumbing.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary tokens, exhausted position table, or a
    /// non-causal architecture.
    pub fn decode_step(
        &self,
        token: usize,
        state: &mut DecodeState,
        toggles: SectionToggles,
        inject: Option<&InjectionSpec>,
        report: &mut AbftReport,
    ) -> Matrix {
        assert!(
            self.supports_decode(),
            "decode_step: non-causal architecture"
        );
        assert!(
            !state.is_parked(),
            "decode_step: state is parked — unpark_state first"
        );
        let t = state.pos;
        let hidden = self.config.hidden;
        let protection = self
            .blocks
            .first()
            .map(|b| b.attn.protection)
            .unwrap_or_else(ProtectionConfig::off);
        // Non-GEMM op guard for the whole decode step: embedding row sum,
        // per-block LayerNorms and residual adds, final LN.
        let op_guard = GuardedSection::guard_step(&protection);

        // ---- embedding row (token + position), the row image of
        // `Embedding::forward_tape`.
        let tok_table = &self.embedding.tok.value;
        let pos_table = &self.embedding.pos.value;
        assert!(token < tok_table.rows(), "token id {token} out of vocab");
        let p = t + self.embedding.pos_offset;
        assert!(p < pos_table.rows(), "position table exhausted at {t}");
        let mut h = Matrix::zeros(1, hidden);
        for (d, (&tv, &pv)) in h
            .row_mut(0)
            .iter_mut()
            .zip(tok_table.row(token).iter().zip(pos_table.row(p)))
        {
            *d = tv + pv;
        }
        verify_rowsum_add(
            tok_table.row(token),
            pos_table.row(p),
            h.row_mut(0),
            &op_guard,
        );

        // ---- blocks: pre-LN row pipeline with cached attention.
        for (i, (block, cache)) in self.blocks.iter().zip(&mut state.layers).enumerate() {
            assert_eq!(block.arch, BlockArch::PreLn, "causal blocks are pre-LN");
            let mask_row = self.mask_row_for_layer(i, t, t + 1);

            let spec = inject.filter(|s| s.layer == i).copied();
            let mut fired = false;
            let mut hook_fn = move |site: FaultSite, m: &mut CheckedMatrix| {
                let Some(s) = spec else { return };
                if fired || site.op != s.op {
                    return;
                }
                if let Some(hh) = site.head {
                    if hh != s.head {
                        return;
                    }
                }
                fired = true;
                let r = s.row % m.rows();
                let c = s.col % m.cols();
                let old = m.get(r, c);
                m.set(r, c, s.kind.apply(old));
            };
            let mut ctx = ForwardCtx {
                mask: Some(&mask_row),
                toggles,
                hook: spec.is_some().then_some(&mut hook_fn as _),
                report: &mut *report,
            };

            let (n1, _) = block.ln1.forward_tape_checked(&h, &op_guard);
            // Borrowed weight view: a decoded token must not pay a
            // hidden×hidden snapshot clone per layer on the serving path.
            let al = &block.attn;
            let weights = AttentionWeightsRef {
                hidden: al.hidden(),
                heads: al.heads,
                wq: &al.wq.value,
                wk: &al.wk.value,
                wv: &al.wv.value,
                wo: &al.wo.value,
                bq: al.bq.bias(),
                bk: al.bk.bias(),
                bv: al.bv.bias(),
                bo: al.bo.bias(),
            };
            let a = attn_decode_step(&weights, &al.protection, &n1, cache, &mut ctx);
            let res = residual_add_checked(&h, &a, &op_guard);
            let (n2, _) = block.ln2.forward_tape_checked(&res, &op_guard);
            let block_protection = block.attn.protection;
            let (f, _) = block
                .ffn
                .forward_guarded_tape(&n2, &block_protection, &mut ctx);
            h = residual_add_checked(&res, &f, &op_guard);
        }

        // ---- head: final LN on the single row, then the classifier.
        if let Some(ln) = &self.final_ln {
            let (y, _) = ln.forward_tape_checked(&h, &op_guard);
            h = y;
        }
        let (logits, _) = self.classifier.forward_tape(&h);
        state.pos = t + 1;
        report.absorb_op_guard(op_guard.take_stats());
        logits
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // step index t addresses parallel token/logit structures
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use attn_fault::FaultKind;
    use attn_tensor::rng::TensorRng;
    use attnchecker::attention::AttnOp;
    use attnchecker::config::ProtectionConfig;

    fn gpt(arch: ModelArch, protection: ProtectionConfig) -> TransformerModel {
        let mut rng = TensorRng::seed_from(31);
        let mut cfg = match arch {
            ModelArch::GptNeo => ModelConfig::gpt_neo(),
            _ => ModelConfig::gpt2(),
        };
        cfg.hidden = 32;
        cfg.heads = 2;
        cfg.layers = 2;
        cfg.local_window = 3;
        TransformerModel::new(cfg, protection, &mut rng)
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.data().iter().map(|v| v.to_bits()).collect()
    }

    fn check_parity(arch: ModelArch, prefill_len: usize) {
        let m = gpt(arch, ProtectionConfig::full());
        let tokens: Vec<usize> = (0..10).map(|i| (i * 37 + 5) % m.config.vocab).collect();
        let mut state = m.new_decode_state();
        let mut report = AbftReport::default();
        let logits0 = m.prefill(
            &tokens[..prefill_len],
            &mut state,
            SectionToggles::all(),
            &mut report,
        );
        // Prefill logits are the full-forward logits of the prompt.
        let mut r = AbftReport::default();
        let (full0, _) =
            m.forward_tape(&tokens[..prefill_len], SectionToggles::all(), None, &mut r);
        assert_eq!(bits(&logits0), bits(&full0), "prefill logits");

        for t in prefill_len..tokens.len() {
            let logits = m.decode_step(
                tokens[t],
                &mut state,
                SectionToggles::all(),
                None,
                &mut report,
            );
            let mut r = AbftReport::default();
            let (full, _) = m.forward_tape(&tokens[..=t], SectionToggles::all(), None, &mut r);
            assert_eq!(
                bits(&logits),
                bits(&full),
                "{arch:?} prefill={prefill_len} t={t}: decode logits diverged from full forward"
            );
        }
        assert!(report.is_quiet(), "fault-free decode must be quiet");
    }

    #[test]
    fn gpt2_decode_is_bit_identical_to_full_forward_at_several_prefills() {
        for prefill in [1, 4, 8] {
            check_parity(ModelArch::Gpt2, prefill);
        }
    }

    #[test]
    fn gpt_neo_local_attention_decode_is_bit_identical() {
        for prefill in [1, 5] {
            check_parity(ModelArch::GptNeo, prefill);
        }
    }

    #[test]
    fn mask_row_matches_full_mask_row() {
        let m = gpt(ModelArch::GptNeo, ProtectionConfig::off());
        for layer in 0..2 {
            for len in 1..9 {
                let full = m.mask_for_layer(layer, len).unwrap();
                let row = m.mask_row_for_layer(layer, len - 1, len);
                for c in 0..len {
                    assert_eq!(
                        row[(0, c)],
                        full[(len - 1, c)],
                        "layer={layer} len={len} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn injected_decode_fault_is_corrected_to_fault_free_bits() {
        let m = gpt(ModelArch::Gpt2, ProtectionConfig::full());
        let tokens: Vec<usize> = (0..8).map(|i| (i * 11 + 3) % m.config.vocab).collect();

        // Fault-free reference decode.
        let mut clean_state = m.new_decode_state();
        let mut r = AbftReport::default();
        let _ = m.prefill(
            &tokens[..4],
            &mut clean_state,
            SectionToggles::all(),
            &mut r,
        );
        let mut clean_logits = Vec::new();
        for t in 4..tokens.len() {
            clean_logits.push(m.decode_step(
                tokens[t],
                &mut clean_state,
                SectionToggles::all(),
                None,
                &mut r,
            ));
        }

        for op in [AttnOp::Q, AttnOp::AS, AttnOp::CL, AttnOp::Ffn1] {
            let mut state = m.new_decode_state();
            let mut report = AbftReport::default();
            let _ = m.prefill(&tokens[..4], &mut state, SectionToggles::all(), &mut report);
            let spec = InjectionSpec {
                layer: 1,
                op,
                head: 0,
                row: 0,
                col: 5,
                kind: FaultKind::Inf,
            };
            for (idx, t) in (4..tokens.len()).enumerate() {
                let inject = (idx == 1).then_some(&spec);
                let logits = m.decode_step(
                    tokens[t],
                    &mut state,
                    SectionToggles::all(),
                    inject,
                    &mut report,
                );
                assert_eq!(
                    bits(&logits),
                    bits(&clean_logits[idx]),
                    "{op:?} step {idx}: corrected decode must match fault-free bits"
                );
            }
            assert!(report.correction_count() > 0, "{op:?}: no corrections");
            assert_eq!(report.unrecovered, 0, "{op:?}");
        }
    }

    #[test]
    fn unprotected_decode_fault_propagates_to_logits() {
        let m = gpt(ModelArch::Gpt2, ProtectionConfig::off());
        let tokens: Vec<usize> = (0..6).collect();
        let mut state = m.new_decode_state();
        let mut report = AbftReport::default();
        let _ = m.prefill(
            &tokens[..3],
            &mut state,
            SectionToggles::none(),
            &mut report,
        );
        let spec = InjectionSpec {
            layer: 0,
            op: AttnOp::K,
            head: 0,
            row: 0,
            col: 2,
            kind: FaultKind::NaN,
        };
        let logits = m.decode_step(
            tokens[3],
            &mut state,
            SectionToggles::none(),
            Some(&spec),
            &mut report,
        );
        assert!(
            !logits.all_finite(),
            "unprotected NaN must reach the logits"
        );
    }

    #[test]
    fn park_unpark_mid_decode_preserves_bit_parity() {
        let m = gpt(ModelArch::Gpt2, ProtectionConfig::full());
        let tokens: Vec<usize> = (0..9).map(|i| (i * 13 + 2) % m.config.vocab).collect();

        // Uninterrupted reference stream.
        let mut ref_state = m.new_decode_state();
        let mut r = AbftReport::default();
        let _ = m.prefill(&tokens[..3], &mut ref_state, SectionToggles::all(), &mut r);
        let mut ref_logits = Vec::new();
        for t in 3..tokens.len() {
            ref_logits.push(m.decode_step(
                tokens[t],
                &mut ref_state,
                SectionToggles::all(),
                None,
                &mut r,
            ));
        }

        // Same stream, parked and unparked between two decode steps.
        let mut state = m.new_decode_state();
        let mut report = AbftReport::default();
        let _ = m.prefill(&tokens[..3], &mut state, SectionToggles::all(), &mut report);
        for (idx, t) in (3..tokens.len()).enumerate() {
            if idx == 2 {
                m.park_state(&mut state, &mut report);
                assert!(state.is_parked());
                assert!(state.cold_bytes() > 0);
                assert!(state.layer_caches().is_empty());
                m.unpark_state(&mut state, &mut report);
                assert!(!state.is_parked());
            }
            let logits = m.decode_step(
                tokens[t],
                &mut state,
                SectionToggles::all(),
                None,
                &mut report,
            );
            assert_eq!(
                bits(&logits),
                bits(&ref_logits[idx]),
                "step {idx}: park/unpark broke the decode stream"
            );
        }
        assert_eq!(report.detections, 0, "fault-free move must be quiet");
    }

    #[test]
    #[should_panic]
    fn parked_state_cannot_decode() {
        let m = gpt(ModelArch::Gpt2, ProtectionConfig::full());
        let mut state = m.new_decode_state();
        let mut report = AbftReport::default();
        let _ = m.prefill(&[1, 2, 3], &mut state, SectionToggles::all(), &mut report);
        m.park_state(&mut state, &mut report);
        let _ = m.decode_step(4, &mut state, SectionToggles::all(), None, &mut report);
    }

    #[test]
    #[should_panic]
    fn bert_cannot_decode() {
        let mut rng = TensorRng::seed_from(1);
        let m = TransformerModel::new(ModelConfig::bert_small(), ProtectionConfig::off(), &mut rng);
        let _ = m.new_decode_state();
    }
}
