//! Training loop with non-trainable-state detection and ABFT bookkeeping.
//!
//! Since the per-example activation-tape refactor, a training step is
//! data-parallel: each batch item runs forward + backward against the
//! shared model (`&TransformerModel`) with its own tape, report, and
//! gradient buffer, fanned out over a sized rayon pool
//! ([`Trainer::set_parallelism`]). The per-item results are then reduced
//! in **fixed batch order** — losses summed, reports merged, gradient
//! buffers folded into the model — so a step's loss and every post-step
//! parameter bit are identical at any worker count.

use crate::data::{Example, SyntheticMrpc};
use crate::model::{cross_entropy, cross_entropy_checked, InjectionSpec, TransformerModel};
use crate::optim::AdamW;
use crate::param::{Grads, HasParams};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::SectionToggles;
use attnchecker::config::ProtectionConfig;
use attnchecker::policy::ProtectionPolicy;
use attnchecker::report::AbftReport;
use attnchecker::section::GuardedSection;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Result of one training step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Mean cross-entropy loss over the batch (NaN signals corruption).
    pub loss: f32,
    /// Aggregated ABFT activity during the step (the merge of
    /// `item_reports`, in batch order).
    pub report: AbftReport,
    /// Per-item ABFT reports, in batch order — an injection into one item
    /// shows up only in that item's report.
    pub item_reports: Vec<AbftReport>,
    /// True when this step put the model into a non-trainable state: the
    /// loss is NaN or a parameter became non-finite after the update
    /// (the paper's §3 criterion).
    pub non_trainable: bool,
    /// Wall time of the whole step (forward + backward + optimizer).
    pub step_time: Duration,
    /// Busy time spent inside attention forward passes, summed over batch
    /// items. With `workers == 1` this is wall time and
    /// `attention_time + ffn_time <= step_time`; with more workers items
    /// overlap, so the sums may exceed `step_time` but stay within
    /// `step_time * workers` (each worker's busy time fits in the step).
    pub attention_time: Duration,
    /// Busy time spent inside FFN forward passes, summed over batch items
    /// (same semantics as `attention_time`).
    pub ffn_time: Duration,
    /// Worker threads the step fanned batch items over.
    pub workers: usize,
    /// GEMM/encoding workspace-arena allocation events on the calling
    /// thread during this step (see
    /// `attn_tensor::workspace::thread_alloc_events`). The arena warms up
    /// over the first step(s); a steady-state step is allocation-free on
    /// the GEMM/encode hot path, so this settles to 0 — the property the
    /// zero-alloc regression test asserts. With `workers > 1` the fanned-
    /// out items allocate on their own worker threads, which this
    /// caller-thread counter intentionally does not include.
    pub ws_allocs: u64,
}

/// One batch item's contribution to a training step, produced on whichever
/// worker ran the item and reduced in batch order afterwards.
struct ItemOutcome {
    loss: f32,
    grads: Grads,
    report: AbftReport,
    attn_time: Duration,
    ffn_time: Duration,
}

/// Fine-tuning driver for one model.
pub struct Trainer {
    /// The model being trained.
    pub model: TransformerModel,
    /// Optimizer.
    pub optim: AdamW,
    /// Single owner of the per-section frequency gates — callers can no
    /// longer hold gates of their own and drift out of phase with the
    /// model's protection config.
    policy: ProtectionPolicy,
    /// Worker threads `train_step*` fans batch items over (1 = sequential).
    parallelism: usize,
    /// Pool sized to `parallelism`, built once per knob change (real rayon
    /// spawns OS threads at build time — rebuilding per step would pay
    /// spawn/join on every training step).
    pool: Option<rayon::ThreadPool>,
}

impl Trainer {
    /// Build a trainer with the given learning rate. Steps run
    /// sequentially until [`Self::set_parallelism`] raises the worker
    /// count.
    pub fn new(model: TransformerModel, lr: f32) -> Self {
        let policy = ProtectionPolicy::new(model.blocks[0].attn.protection);
        Self {
            model,
            optim: AdamW::new(lr),
            policy,
            parallelism: 1,
            pool: None,
        }
    }

    /// Fan batch items of every training step over `workers` threads
    /// (clamped to ≥ 1). Any setting produces bit-identical losses and
    /// parameter updates — the per-item gradient buffers are reduced in
    /// batch order regardless of scheduling — so this is purely a
    /// throughput knob.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
        self.pool = (self.parallelism > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.parallelism)
                .build()
                .expect("train-step thread pool")
        });
    }

    /// Worker threads training steps fan out over.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Change the protection config on every attention layer *and* the
    /// scheduling policy together, so they cannot desync. Gate phases are
    /// kept (a frequency change re-paces future checks, it does not reset
    /// history).
    pub fn set_protection(&mut self, protection: ProtectionConfig) {
        self.model.set_protection(protection);
        self.policy.sync_config(protection);
    }

    /// The protection-scheduling policy in force. Takes `&mut self` so the
    /// policy's config snapshot can first be re-synced from the model —
    /// otherwise a caller that mutated `model.set_protection` directly
    /// (both are public) would observe a stale config here.
    pub fn policy(&mut self) -> &ProtectionPolicy {
        self.policy
            .sync_config(self.model.blocks[0].attn.protection);
        &self.policy
    }

    /// Advance the per-section frequency gates one step and return the
    /// sections to protect this step (paper §4.5 frequencies, realised
    /// deterministically).
    fn next_toggles(&mut self) -> SectionToggles {
        // Defensive re-sync: tolerate callers that mutated the model's
        // protection config directly instead of via `set_protection`.
        self.policy
            .sync_config(self.model.blocks[0].attn.protection);
        self.policy.next_toggles()
    }

    /// One clean training step over `batch`.
    pub fn train_step(&mut self, batch: &[&Example]) -> StepOutcome {
        self.train_step_injected(batch, None)
    }

    /// One training step, optionally injecting a fault into the forward
    /// pass of batch item `inject.0`.
    ///
    /// Batch items run concurrently over [`Self::parallelism`] workers;
    /// each item forwards and backwards against the shared model with its
    /// own activation tape, ABFT report, and gradient buffer (the per-item
    /// isolation pattern of `ProtectedAttention::forward_batch_with`, so
    /// an injection strikes only its target item). Per-item results are
    /// reduced in batch order, making the step bit-identical to the
    /// sequential schedule at any worker count.
    pub fn train_step_injected(
        &mut self,
        batch: &[&Example],
        inject: Option<(usize, InjectionSpec)>,
    ) -> StepOutcome {
        assert!(!batch.is_empty());
        let toggles = self.next_toggles();
        let workers = self.parallelism.min(batch.len());
        let ws0 = attn_tensor::workspace::thread_alloc_events();
        let t0 = Instant::now();

        let inv = 1.0 / batch.len() as f32;
        let model = &self.model;
        let protection = model.blocks[0].attn.protection;
        let run_item = |bi: usize| -> ItemOutcome {
            let ex = batch[bi];
            let spec = match &inject {
                Some((target, spec)) if *target == bi => Some(*spec),
                _ => None,
            };
            let mut report = AbftReport::default();
            // One op-guard scope per item covers the loss softmax and the
            // whole backward pass (the forward ops run their own scopes).
            let op_guard = GuardedSection::guard_step(&protection);
            let (logits, tape) =
                model.forward_tape(&ex.tokens, toggles, spec.as_ref(), &mut report);
            let (loss, dlogits) = cross_entropy_checked(&logits, ex.label, &op_guard);
            let mut grads = Grads::new();
            model.backward_tape_checked(&dlogits.scaled(inv), &tape, &mut grads, &op_guard);
            report.absorb_op_guard(op_guard.take_stats());
            ItemOutcome {
                loss,
                grads,
                report,
                attn_time: tape.attn_time,
                ffn_time: tape.ffn_time,
            }
        };
        let items: Vec<ItemOutcome> = if workers <= 1 {
            (0..batch.len()).map(run_item).collect()
        } else {
            // The shim's `collect` reassembles results in input order, so
            // scheduling cannot reorder the reduction below.
            let pool = self.pool.as_ref().expect("pool built by set_parallelism");
            pool.install(|| (0..batch.len()).into_par_iter().map(run_item).collect())
        };

        // Deterministic fixed-order reduction: batch order, always.
        let mut report = AbftReport::default();
        let mut item_reports = Vec::with_capacity(items.len());
        let mut loss_sum = 0.0f32;
        let mut attention_time = Duration::ZERO;
        let mut ffn_time = Duration::ZERO;
        for item in &items {
            loss_sum += item.loss;
            report.merge(&item.report);
            item_reports.push(item.report.clone());
            attention_time += item.attn_time;
            ffn_time += item.ffn_time;
        }
        // The optimizer's at-rest moment digests verify-and-heal inside
        // the same guarded scope; its activity lands in the step report.
        let step_guard = GuardedSection::guard_step(&protection);
        self.optim.step_batched_checked(
            &mut self.model,
            items.into_iter().map(|i| i.grads),
            &step_guard,
        );
        report.absorb_op_guard(step_guard.take_stats());

        let loss = loss_sum * inv;
        let params_ok = self.model.params_finite();
        StepOutcome {
            loss,
            report,
            item_reports,
            non_trainable: loss.is_nan() || !params_ok,
            step_time: t0.elapsed(),
            attention_time,
            ffn_time,
            workers,
            ws_allocs: attn_tensor::workspace::thread_alloc_events() - ws0,
        }
    }

    /// Train one epoch; returns the mean per-example loss.
    ///
    /// Weighted by example count, not by batch: averaging batch means
    /// would over-weight a short final batch (e.g. 17 examples at batch
    /// size 8 → the 1-example tail counting as much as a full batch).
    pub fn train_epoch(
        &mut self,
        dataset: &SyntheticMrpc,
        batch_size: usize,
        rng: &mut TensorRng,
    ) -> f32 {
        let batches = dataset.batches(batch_size, rng);
        let mut sum = 0.0f32;
        let mut n = 0usize;
        for batch in &batches {
            let out = self.train_step(batch);
            sum += out.loss * batch.len() as f32;
            n += batch.len();
        }
        sum / n.max(1) as f32
    }

    /// Forward-only evaluation: `(mean loss, accuracy)`.
    pub fn evaluate(&mut self, dataset: &SyntheticMrpc) -> (f32, f32) {
        let mut loss_sum = 0.0f32;
        let mut correct = 0usize;
        let mut report = AbftReport::default();
        for ex in &dataset.examples {
            let logits =
                self.model
                    .forward_example(&ex.tokens, SectionToggles::none(), None, &mut report);
            let (loss, _) = cross_entropy(&logits, ex.label);
            loss_sum += loss;
            if argmax_row(logits.row(0)) == ex.label {
                correct += 1;
            }
        }
        (
            loss_sum / dataset.len() as f32,
            correct as f32 / dataset.len() as f32,
        )
    }
}

/// Index of the row maximum (first occurrence wins; NaNs never win). Works
/// for any class count — the prediction rule for `num_classes != 2` models
/// as well as the binary MRPC head.
fn argmax_row(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > row[best] || row[best].is_nan() {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use attn_fault::FaultKind;
    use attnchecker::attention::AttnOp;
    use attnchecker::config::ProtectionConfig;

    fn tiny_trainer(protection: ProtectionConfig) -> (Trainer, SyntheticMrpc, TensorRng) {
        let mut rng = TensorRng::seed_from(21);
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 2;
        let model = TransformerModel::new(cfg, protection, &mut rng);
        let ds = SyntheticMrpc::generate(16, 256, 16, 3);
        (Trainer::new(model, 1e-3), ds, rng)
    }

    #[test]
    fn clean_step_is_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::off());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let out = tr.train_step(&batch);
        assert!(!out.non_trainable);
        assert!(out.loss.is_finite());
        assert!(out.report.is_quiet());
    }

    #[test]
    fn loss_decreases_over_training() {
        let (mut tr, ds, mut rng) = tiny_trainer(ProtectionConfig::off());
        let first = tr.train_epoch(&ds, 4, &mut rng);
        for _ in 0..4 {
            let _ = tr.train_epoch(&ds, 4, &mut rng);
        }
        let last = tr.train_epoch(&ds, 4, &mut rng);
        assert!(
            last < first,
            "training must reduce loss: first {first}, last {last}"
        );
    }

    #[test]
    fn unprotected_nan_injection_is_non_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::off());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let spec = InjectionSpec {
            layer: 0,
            op: AttnOp::Q,
            head: 0,
            row: 2,
            col: 3,
            kind: FaultKind::NaN,
        };
        let out = tr.train_step_injected(&batch, Some((1, spec)));
        assert!(out.non_trainable, "NaN in Q must break training");
    }

    #[test]
    fn protected_nan_injection_stays_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let spec = InjectionSpec {
            layer: 1,
            op: AttnOp::K,
            head: 0,
            row: 1,
            col: 7,
            kind: FaultKind::NaN,
        };
        let out = tr.train_step_injected(&batch, Some((2, spec)));
        assert!(!out.non_trainable, "ATTNChecker must absorb the fault");
        assert!(out.report.correction_count() > 0);
        assert_eq!(out.report.unrecovered, 0);
    }

    #[test]
    fn protected_and_unprotected_losses_match_when_clean() {
        let (mut a, ds, _) = tiny_trainer(ProtectionConfig::full());
        let (mut b, _, _) = tiny_trainer(ProtectionConfig::off());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let oa = a.train_step(&batch);
        let ob = b.train_step(&batch);
        assert!(
            (oa.loss - ob.loss).abs() < 1e-4,
            "protection must not change fault-free training: {} vs {}",
            oa.loss,
            ob.loss
        );
    }

    #[test]
    fn frequency_half_checks_every_other_step() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::with_frequencies(0.5, 0.5, 0.5));
        let batch: Vec<&Example> = ds.examples.iter().take(2).collect();
        let o1 = tr.train_step(&batch);
        let o2 = tr.train_step(&batch);
        let checked: Vec<usize> = vec![o1.report.sections_checked, o2.report.sections_checked];
        // One step checks all sections, the other none (2 layers × 3
        // sections × batch 2 = 12 section executions when on).
        assert!(checked.contains(&0), "{checked:?}");
        assert!(checked.iter().any(|&c| c > 0), "{checked:?}");
    }

    #[test]
    fn evaluate_reports_loss_and_accuracy() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::off());
        let (loss, acc) = tr.evaluate(&ds);
        assert!(loss.is_finite() && loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn timers_are_populated() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        let batch: Vec<&Example> = ds.examples.iter().take(2).collect();
        let out = tr.train_step(&batch);
        assert_eq!(out.workers, 1);
        assert!(out.step_time > Duration::ZERO);
        assert!(out.attention_time > Duration::ZERO);
        assert!(out.ffn_time > Duration::ZERO);
        // Sequential mode: busy time is wall time, so it fits in the step.
        assert!(out.attention_time + out.ffn_time <= out.step_time);
    }

    #[test]
    fn timers_are_populated_in_parallel_mode() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        tr.set_parallelism(4);
        let batch: Vec<&Example> = ds.examples.iter().take(8).collect();
        let out = tr.train_step(&batch);
        assert_eq!(out.workers, 4);
        assert!(out.step_time > Duration::ZERO);
        assert!(out.attention_time > Duration::ZERO);
        assert!(out.ffn_time > Duration::ZERO);
        // Parallel mode: per-item busy times overlap, so their sum may
        // exceed the wall step time but never step_time × workers (each
        // worker's busy window fits inside the step).
        assert!(out.attention_time + out.ffn_time <= out.step_time * out.workers as u32);
    }

    #[test]
    fn steady_state_step_is_gemm_allocation_free() {
        // The acceptance property of the workspace arena: after the warm-up
        // step(s) fill the thread-local pool, a training step performs no
        // heap allocation inside GEMM or checksum encoding — every packing
        // panel and checksum staging buffer is a pool hit.
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let _ = tr.train_step(&batch); // warm the arena
        let _ = tr.train_step(&batch); // settle best-fit reuse
        for step in 0..3 {
            let out = tr.train_step(&batch);
            assert_eq!(
                out.ws_allocs, 0,
                "steady-state step {step} allocated GEMM/encode workspace"
            );
        }
    }

    #[test]
    fn parallelism_knob_clamps_to_one() {
        let (mut tr, _, _) = tiny_trainer(ProtectionConfig::off());
        assert_eq!(tr.parallelism(), 1);
        tr.set_parallelism(0);
        assert_eq!(tr.parallelism(), 1);
        tr.set_parallelism(3);
        assert_eq!(tr.parallelism(), 3);
    }

    #[test]
    fn parallel_step_is_bit_identical_to_sequential() {
        let (mut seq, ds, _) = tiny_trainer(ProtectionConfig::full());
        let (mut par, _, _) = tiny_trainer(ProtectionConfig::full());
        par.set_parallelism(4);
        let batch: Vec<&Example> = ds.examples.iter().take(8).collect();
        for step in 0..3 {
            let a = seq.train_step(&batch);
            let b = par.train_step(&batch);
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "step {step}: loss bits diverged"
            );
            assert_eq!(a.report, b.report, "step {step}: reports diverged");
        }
        let mut pa = Vec::new();
        seq.model.visit_params(&mut |p| pa.push(p.value.clone()));
        let mut pb = Vec::new();
        par.model.visit_params(&mut |p| pb.push(p.value.clone()));
        for (a, b) in pa.iter().zip(&pb) {
            let bits_equal = a
                .data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "parameter bits diverged between schedules");
        }
    }

    #[test]
    fn injected_fault_report_is_localised_to_its_item() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        tr.set_parallelism(4);
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let spec = InjectionSpec {
            layer: 0,
            op: AttnOp::K,
            head: 1,
            row: 2,
            col: 5,
            kind: FaultKind::Inf,
        };
        let out = tr.train_step_injected(&batch, Some((2, spec)));
        assert_eq!(out.item_reports.len(), 4);
        assert!(out.item_reports[2].correction_count() > 0);
        for (i, r) in out.item_reports.iter().enumerate() {
            if i != 2 {
                assert!(r.is_quiet(), "bystander item {i} reported activity: {r}");
            }
        }
        assert_eq!(
            out.report.correction_count(),
            out.item_reports[2].correction_count()
        );
    }

    #[test]
    fn train_epoch_weights_by_example_count() {
        // Batch size 5 over 16 examples → 5+5+5+1: the 1-example tail must
        // carry 1/16 of the epoch mean, not 1/4.
        let (mut a, ds, mut rng) = tiny_trainer(ProtectionConfig::off());
        let (mut b, _, _) = tiny_trainer(ProtectionConfig::off());
        let mut rng_twin = rng.clone();
        let epoch = a.train_epoch(&ds, 5, &mut rng);
        let mut sum = 0.0f32;
        let mut n = 0usize;
        for batch in &ds.batches(5, &mut rng_twin) {
            let out = b.train_step(batch);
            sum += out.loss * batch.len() as f32;
            n += batch.len();
        }
        assert_eq!(n, ds.len());
        assert_eq!(epoch.to_bits(), (sum / n as f32).to_bits());
    }

    #[test]
    fn argmax_row_picks_maximum_not_hardcoded_class() {
        assert_eq!(argmax_row(&[0.1, 0.9]), 1);
        assert_eq!(argmax_row(&[0.9, 0.1]), 0);
        assert_eq!(argmax_row(&[-3.0, -1.0, -2.0]), 1);
        assert_eq!(argmax_row(&[1.0, 2.0, 5.0, 0.0]), 2);
        // Ties keep the earliest index (the old 2-class rule's behaviour).
        assert_eq!(argmax_row(&[2.0, 2.0]), 0);
        // NaN never wins over a finite value.
        assert_eq!(argmax_row(&[f32::NAN, 1.0, 0.5]), 1);
    }

    #[test]
    fn evaluate_handles_more_than_two_classes() {
        let mut rng = TensorRng::seed_from(23);
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 1;
        cfg.num_classes = 4;
        let model = TransformerModel::new(cfg, ProtectionConfig::off(), &mut rng);
        let mut tr = Trainer::new(model, 1e-3);
        let ds = SyntheticMrpc::generate(8, 256, 16, 5);
        let (loss, acc) = tr.evaluate(&ds);
        assert!(loss.is_finite() && loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn ffn_injection_protected_training_stays_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let spec = InjectionSpec {
            layer: 1,
            op: AttnOp::Ffn2,
            head: 0,
            row: 4,
            col: 11,
            kind: FaultKind::Inf,
        };
        let out = tr.train_step_injected(&batch, Some((1, spec)));
        assert!(!out.non_trainable, "FFN protection must absorb the fault");
        assert!(out.report.correction_count() > 0);
        assert_eq!(out.report.unrecovered, 0);
    }

    #[test]
    fn set_protection_updates_model_and_policy_together() {
        let (mut tr, _, _) = tiny_trainer(ProtectionConfig::full());
        tr.set_protection(ProtectionConfig::off());
        assert!(tr.model.blocks.iter().all(|b| b.attn.protection.is_off()));
        assert!(!tr.policy().would_ever_fire());
        // Even a direct model mutation (bypassing Trainer::set_protection)
        // cannot desync the observable policy: the accessor re-syncs.
        tr.model.set_protection(ProtectionConfig::full());
        assert!(tr.policy().would_ever_fire());
    }
}
