//! Training loop with non-trainable-state detection and ABFT bookkeeping.

use crate::data::{Example, SyntheticMrpc};
use crate::model::{cross_entropy, InjectionSpec, TransformerModel};
use crate::optim::AdamW;
use crate::param::HasParams;
use attn_tensor::rng::TensorRng;
use attnchecker::attention::SectionToggles;
use attnchecker::config::ProtectionConfig;
use attnchecker::policy::ProtectionPolicy;
use attnchecker::report::AbftReport;
use std::time::{Duration, Instant};

/// Result of one training step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Mean cross-entropy loss over the batch (NaN signals corruption).
    pub loss: f32,
    /// Aggregated ABFT activity during the step.
    pub report: AbftReport,
    /// True when this step put the model into a non-trainable state: the
    /// loss is NaN or a parameter became non-finite after the update
    /// (the paper's §3 criterion).
    pub non_trainable: bool,
    /// Wall time of the whole step (forward + backward + optimizer).
    pub step_time: Duration,
    /// Wall time spent inside attention forward passes.
    pub attention_time: Duration,
    /// Wall time spent inside FFN forward passes.
    pub ffn_time: Duration,
}

/// Fine-tuning driver for one model.
pub struct Trainer {
    /// The model being trained.
    pub model: TransformerModel,
    /// Optimizer.
    pub optim: AdamW,
    /// Single owner of the per-section frequency gates — callers can no
    /// longer hold gates of their own and drift out of phase with the
    /// model's protection config.
    policy: ProtectionPolicy,
}

impl Trainer {
    /// Build a trainer with the given learning rate.
    pub fn new(model: TransformerModel, lr: f32) -> Self {
        let policy = ProtectionPolicy::new(model.blocks[0].attn.protection);
        Self {
            model,
            optim: AdamW::new(lr),
            policy,
        }
    }

    /// Change the protection config on every attention layer *and* the
    /// scheduling policy together, so they cannot desync. Gate phases are
    /// kept (a frequency change re-paces future checks, it does not reset
    /// history).
    pub fn set_protection(&mut self, protection: ProtectionConfig) {
        self.model.set_protection(protection);
        self.policy.sync_config(protection);
    }

    /// The protection-scheduling policy in force. Takes `&mut self` so the
    /// policy's config snapshot can first be re-synced from the model —
    /// otherwise a caller that mutated `model.set_protection` directly
    /// (both are public) would observe a stale config here.
    pub fn policy(&mut self) -> &ProtectionPolicy {
        self.policy
            .sync_config(self.model.blocks[0].attn.protection);
        &self.policy
    }

    /// Advance the per-section frequency gates one step and return the
    /// sections to protect this step (paper §4.5 frequencies, realised
    /// deterministically).
    fn next_toggles(&mut self) -> SectionToggles {
        // Defensive re-sync: tolerate callers that mutated the model's
        // protection config directly instead of via `set_protection`.
        self.policy
            .sync_config(self.model.blocks[0].attn.protection);
        self.policy.next_toggles()
    }

    /// One clean training step over `batch`.
    pub fn train_step(&mut self, batch: &[&Example]) -> StepOutcome {
        self.train_step_injected(batch, None)
    }

    /// One training step, optionally injecting a fault into the forward
    /// pass of batch item `inject.0`.
    pub fn train_step_injected(
        &mut self,
        batch: &[&Example],
        inject: Option<(usize, InjectionSpec)>,
    ) -> StepOutcome {
        assert!(!batch.is_empty());
        let toggles = self.next_toggles();
        let t0 = Instant::now();
        self.model.reset_step_timers();

        let mut report = AbftReport::default();
        let mut loss_sum = 0.0f32;
        let inv = 1.0 / batch.len() as f32;
        for (bi, ex) in batch.iter().enumerate() {
            let spec = match &inject {
                Some((target, spec)) if *target == bi => Some(spec),
                _ => None,
            };
            let logits = self
                .model
                .forward_example(&ex.tokens, toggles, spec, &mut report);
            let (loss, dlogits) = cross_entropy(&logits, ex.label);
            loss_sum += loss;
            self.model.backward_example(&dlogits.scaled(inv));
        }
        self.optim.step(&mut self.model);

        let loss = loss_sum * inv;
        let params_ok = self.model.params_finite();
        StepOutcome {
            loss,
            report,
            non_trainable: loss.is_nan() || !params_ok,
            step_time: t0.elapsed(),
            attention_time: self.model.attn_elapsed,
            ffn_time: self.model.ffn_elapsed,
        }
    }

    /// Train one epoch; returns the mean loss across batches.
    pub fn train_epoch(
        &mut self,
        dataset: &SyntheticMrpc,
        batch_size: usize,
        rng: &mut TensorRng,
    ) -> f32 {
        let batches = dataset.batches(batch_size, rng);
        let mut sum = 0.0f32;
        let mut n = 0usize;
        for batch in &batches {
            let out = self.train_step(batch);
            sum += out.loss;
            n += 1;
        }
        sum / n.max(1) as f32
    }

    /// Forward-only evaluation: `(mean loss, accuracy)`.
    pub fn evaluate(&mut self, dataset: &SyntheticMrpc) -> (f32, f32) {
        let mut loss_sum = 0.0f32;
        let mut correct = 0usize;
        let mut report = AbftReport::default();
        for ex in &dataset.examples {
            let logits =
                self.model
                    .forward_example(&ex.tokens, SectionToggles::none(), None, &mut report);
            let (loss, _) = cross_entropy(&logits, ex.label);
            loss_sum += loss;
            let pred = if logits[(0, 1)] > logits[(0, 0)] {
                1
            } else {
                0
            };
            if pred == ex.label {
                correct += 1;
            }
        }
        (
            loss_sum / dataset.len() as f32,
            correct as f32 / dataset.len() as f32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use attn_fault::FaultKind;
    use attnchecker::attention::AttnOp;
    use attnchecker::config::ProtectionConfig;

    fn tiny_trainer(protection: ProtectionConfig) -> (Trainer, SyntheticMrpc, TensorRng) {
        let mut rng = TensorRng::seed_from(21);
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 2;
        let model = TransformerModel::new(cfg, protection, &mut rng);
        let ds = SyntheticMrpc::generate(16, 256, 16, 3);
        (Trainer::new(model, 1e-3), ds, rng)
    }

    #[test]
    fn clean_step_is_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::off());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let out = tr.train_step(&batch);
        assert!(!out.non_trainable);
        assert!(out.loss.is_finite());
        assert!(out.report.is_quiet());
    }

    #[test]
    fn loss_decreases_over_training() {
        let (mut tr, ds, mut rng) = tiny_trainer(ProtectionConfig::off());
        let first = tr.train_epoch(&ds, 4, &mut rng);
        for _ in 0..4 {
            let _ = tr.train_epoch(&ds, 4, &mut rng);
        }
        let last = tr.train_epoch(&ds, 4, &mut rng);
        assert!(
            last < first,
            "training must reduce loss: first {first}, last {last}"
        );
    }

    #[test]
    fn unprotected_nan_injection_is_non_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::off());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let spec = InjectionSpec {
            layer: 0,
            op: AttnOp::Q,
            head: 0,
            row: 2,
            col: 3,
            kind: FaultKind::NaN,
        };
        let out = tr.train_step_injected(&batch, Some((1, spec)));
        assert!(out.non_trainable, "NaN in Q must break training");
    }

    #[test]
    fn protected_nan_injection_stays_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let spec = InjectionSpec {
            layer: 1,
            op: AttnOp::K,
            head: 0,
            row: 1,
            col: 7,
            kind: FaultKind::NaN,
        };
        let out = tr.train_step_injected(&batch, Some((2, spec)));
        assert!(!out.non_trainable, "ATTNChecker must absorb the fault");
        assert!(out.report.correction_count() > 0);
        assert_eq!(out.report.unrecovered, 0);
    }

    #[test]
    fn protected_and_unprotected_losses_match_when_clean() {
        let (mut a, ds, _) = tiny_trainer(ProtectionConfig::full());
        let (mut b, _, _) = tiny_trainer(ProtectionConfig::off());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let oa = a.train_step(&batch);
        let ob = b.train_step(&batch);
        assert!(
            (oa.loss - ob.loss).abs() < 1e-4,
            "protection must not change fault-free training: {} vs {}",
            oa.loss,
            ob.loss
        );
    }

    #[test]
    fn frequency_half_checks_every_other_step() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::with_frequencies(0.5, 0.5, 0.5));
        let batch: Vec<&Example> = ds.examples.iter().take(2).collect();
        let o1 = tr.train_step(&batch);
        let o2 = tr.train_step(&batch);
        let checked: Vec<usize> = vec![o1.report.sections_checked, o2.report.sections_checked];
        // One step checks all sections, the other none (2 layers × 3
        // sections × batch 2 = 12 section executions when on).
        assert!(checked.contains(&0), "{checked:?}");
        assert!(checked.iter().any(|&c| c > 0), "{checked:?}");
    }

    #[test]
    fn evaluate_reports_loss_and_accuracy() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::off());
        let (loss, acc) = tr.evaluate(&ds);
        assert!(loss.is_finite() && loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn timers_are_populated() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        let batch: Vec<&Example> = ds.examples.iter().take(2).collect();
        let out = tr.train_step(&batch);
        assert!(out.step_time > Duration::ZERO);
        assert!(out.attention_time > Duration::ZERO);
        assert!(out.ffn_time > Duration::ZERO);
        assert!(out.attention_time + out.ffn_time <= out.step_time);
    }

    #[test]
    fn ffn_injection_protected_training_stays_trainable() {
        let (mut tr, ds, _) = tiny_trainer(ProtectionConfig::full());
        let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
        let spec = InjectionSpec {
            layer: 1,
            op: AttnOp::Ffn2,
            head: 0,
            row: 4,
            col: 11,
            kind: FaultKind::Inf,
        };
        let out = tr.train_step_injected(&batch, Some((1, spec)));
        assert!(!out.non_trainable, "FFN protection must absorb the fault");
        assert!(out.report.correction_count() > 0);
        assert_eq!(out.report.unrecovered, 0);
    }

    #[test]
    fn set_protection_updates_model_and_policy_together() {
        let (mut tr, _, _) = tiny_trainer(ProtectionConfig::full());
        tr.set_protection(ProtectionConfig::off());
        assert!(tr.model.blocks.iter().all(|b| b.attn.protection.is_off()));
        assert!(!tr.policy().would_ever_fire());
        // Even a direct model mutation (bypassing Trainer::set_protection)
        // cannot desync the observable policy: the accessor re-syncs.
        tr.model.set_protection(ProtectionConfig::full());
        assert!(tr.policy().would_ever_fire());
    }
}
