//! Affine layer `y = x·W + b` with manual backprop, plus its
//! ATTNChecker-guarded counterpart [`ProtectedLinear`].

use crate::param::{Grads, HasParams, Param};
use attn_tensor::gemm::{matmul, matmul_nt, matmul_tn};
use attn_tensor::ops::{add_bias_inplace, col_sums};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::attention::{AttnOp, FaultSite};
use attnchecker::checked::CheckedMatrix;
use attnchecker::section::{replay_nn, ForwardCtx, GuardedSection};

/// Dense affine layer.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight, `in_dim × out_dim`.
    pub w: Param,
    /// Bias, `1 × out_dim`.
    pub b: Param,
    pub(crate) cache_x: Option<Matrix>,
}

impl Linear {
    /// Xavier-initialised layer.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        Self {
            w: Param::new(format!("{name}.w"), rng.xavier_matrix(in_dim, out_dim)),
            b: Param::zeros(format!("{name}.b"), 1, out_dim),
            cache_x: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Stateless forward: returns the output and the input tape (the
    /// activation backward needs).
    pub fn forward_tape(&self, x: &Matrix) -> (Matrix, Matrix) {
        let mut y = matmul(x, &self.w.value);
        add_bias_inplace(&mut y, self.b.bias());
        (y, x.clone())
    }

    /// Stateless backward over a tape: writes `dW = xᵀ·dy`, `db = Σrows(dy)`
    /// into `grads`, returns `dx = dy·Wᵀ`.
    pub fn backward_tape(&self, dy: &Matrix, x: &Matrix, grads: &mut Grads) -> Matrix {
        grads.accumulate(&self.w.name, &matmul_tn(x, dy));
        grads.accumulate(&self.b.name, &Matrix::from_vec(1, dy.cols(), col_sums(dy)));
        matmul_nt(dy, &self.w.value)
    }

    /// Forward pass, caching the input for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (y, tape) = self.forward_tape(x);
        self.cache_x = Some(tape);
        y
    }

    /// Forward without caching (inference / timing runs).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = matmul(x, &self.w.value);
        add_bias_inplace(&mut y, self.b.bias());
        y
    }

    /// Backward pass: accumulates `dW = xᵀ·dy`, `db = Σrows(dy)`, returns
    /// `dx = dy·Wᵀ`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward before forward");
        let mut grads = Grads::new();
        let dx = self.backward_tape(dy, &x, &mut grads);
        grads.merge_into(self);
        dx
    }
}

impl HasParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// A [`Linear`] layer whose forward runs as one guarded GEMM step inside a
/// [`GuardedSection`] chain: the encoded input's checksums ride through
/// `x·W`, the output is exposed to fault hooks at `site`, and the section's
/// detection point corrects any extreme value in place — refined to exact
/// bits by replaying the producing dot product — before the activation is
/// cached for backward. Backward is untouched: by the time gradients flow,
/// the cached activations are already healed.
#[derive(Debug, Clone)]
pub struct ProtectedLinear {
    /// The wrapped affine layer (parameters, gradients, backward).
    pub inner: Linear,
    /// Tap site this GEMM output exposes to fault hooks.
    pub site: AttnOp,
}

impl ProtectedLinear {
    /// Xavier-initialised guarded layer tapping `site`.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        site: AttnOp,
        rng: &mut TensorRng,
    ) -> Self {
        Self {
            inner: Linear::new(name, in_dim, out_dim, rng),
            site,
        }
    }

    /// Stateless guarded forward over `xc` — either an already-encoded
    /// operand (checksummed products pass straight through and ride) or a
    /// plain wrap, in which case the operand *enters* the section through
    /// the fused encode-and-multiply path: its column encoding accumulates
    /// inside the GEMM's packing pass instead of a standalone sweep.
    /// Returns the checked output — post-detection, post-correction — for
    /// the next chain step, plus the logical input tape for backward.
    pub fn forward_guarded_tape(
        &self,
        xc: &CheckedMatrix,
        sec: &GuardedSection,
        ctx: &mut ForwardCtx<'_, '_>,
    ) -> (CheckedMatrix, Matrix) {
        let w = &self.inner.w.value;
        let bias = self.inner.b.bias();
        let mut y = if xc.has_col_checksums() {
            sec.gemm(xc, &sec.operand(w))
        } else {
            // buf() is exactly the logical data for a plain wrap.
            sec.gemm_encode_cols(xc.buf(), &sec.operand(w))
        };
        y.add_bias(bias);
        ctx.fire(
            FaultSite {
                op: self.site,
                head: None,
            },
            &mut y,
        );
        let mut det = sec.detect(&mut y, usize::MAX);
        if det.detections() > 0 {
            det.refine(&mut y, |r, c| {
                replay_nn(xc.logical_row(r), |kk| w[(kk, c)]) + bias[c]
            });
        }
        det.absorb(ctx.report);
        (y, xc.logical())
    }

    /// Guarded forward caching the logical input for [`Self::backward`].
    pub fn forward_guarded(
        &mut self,
        xc: &CheckedMatrix,
        sec: &GuardedSection,
        ctx: &mut ForwardCtx<'_, '_>,
    ) -> CheckedMatrix {
        let (y, tape) = self.forward_guarded_tape(xc, sec, ctx);
        self.inner.cache_x = Some(tape);
        y
    }

    /// Stateless backward over a tape (delegates to the inner layer).
    pub fn backward_tape(&self, dy: &Matrix, x: &Matrix, grads: &mut Grads) -> Matrix {
        self.inner.backward_tape(dy, x, grads)
    }

    /// Unprotected forward (delegates to the inner layer).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.inner.forward(x)
    }

    /// Forward without caching (inference / timing runs).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.inner.forward_inference(x)
    }

    /// Backward pass (delegates to the inner layer).
    ///
    /// # Panics
    /// Panics if called before a forward.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        self.inner.backward(dy)
    }
}

impl HasParams for ProtectedLinear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check against a scalar loss `Σ(y ⊙ dy)`.
    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = TensorRng::seed_from(1);
        let mut lin = Linear::new("t", 5, 4, &mut rng);
        let x = rng.normal_matrix(3, 5, 1.0);
        let dy = rng.normal_matrix(3, 4, 1.0);

        let _y = lin.forward(&x);
        let dx = lin.backward(&dy);

        let loss = |l: &Linear, xx: &Matrix| -> f32 {
            let y = l.forward_inference(xx);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };

        let eps = 1e-3;
        // dX
        for r in 0..3 {
            for c in 0..5 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss(&lin, &xp) - loss(&lin, &xm)) / (2.0 * eps);
                assert!((fd - dx[(r, c)]).abs() < 2e-2, "dx ({r},{c})");
            }
        }
        // dW
        for r in 0..5 {
            for c in 0..4 {
                let mut lp = lin.clone();
                lp.w.value[(r, c)] += eps;
                let mut lm = lin.clone();
                lm.w.value[(r, c)] -= eps;
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
                assert!(
                    (fd - lin.w.grad[(r, c)]).abs() < 2e-2,
                    "dW ({r},{c}): fd {fd} vs {}",
                    lin.w.grad[(r, c)]
                );
            }
        }
        // db
        for c in 0..4 {
            let mut lp = lin.clone();
            lp.b.value[(0, c)] += eps;
            let mut lm = lin.clone();
            lm.b.value[(0, c)] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((fd - lin.b.grad[(0, c)]).abs() < 2e-2, "db {c}");
        }
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = TensorRng::seed_from(2);
        let mut lin = Linear::new("t", 3, 2, &mut rng);
        lin.b.value[(0, 0)] = 10.0;
        let x = Matrix::zeros(4, 3);
        let y = lin.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert!((y[(0, 0)] - 10.0).abs() < 1e-6);
        assert!((y[(0, 1)]).abs() < 1e-6);
    }

    #[test]
    fn gradient_accumulates_across_calls() {
        let mut rng = TensorRng::seed_from(3);
        let mut lin = Linear::new("t", 3, 3, &mut rng);
        let x = rng.normal_matrix(2, 3, 1.0);
        let dy = rng.normal_matrix(2, 3, 1.0);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let g1 = lin.w.grad.clone();
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        assert!(lin.w.grad.approx_eq(&g1.scaled(2.0), 1e-5, 1e-5));
    }

    #[test]
    #[should_panic]
    fn backward_without_forward_panics() {
        let mut rng = TensorRng::seed_from(4);
        let mut lin = Linear::new("t", 2, 2, &mut rng);
        let _ = lin.backward(&Matrix::zeros(1, 2));
    }

    mod protected {
        use super::*;
        use attnchecker::attention::SectionToggles;
        use attnchecker::config::ProtectionConfig;
        use attnchecker::report::{AbftReport, SectionId};

        fn guarded_forward(
            lin: &mut ProtectedLinear,
            x: &Matrix,
            active: bool,
            hook: Option<attnchecker::attention::FaultHook<'_>>,
        ) -> (Matrix, AbftReport) {
            let mut report = AbftReport::default();
            let out = {
                let mut ctx = ForwardCtx {
                    mask: None,
                    toggles: SectionToggles::all(),
                    hook,
                    report: &mut report,
                };
                let sec = GuardedSection::begin(
                    SectionId::FeedForward,
                    &ProtectionConfig::full(),
                    active,
                    ctx.report,
                );
                let xc = sec.encode_cols(x);
                lin.forward_guarded(&xc, &sec, &mut ctx).logical()
            };
            (out, report)
        }

        #[test]
        fn fault_free_guarded_forward_is_bit_identical() {
            let mut rng = TensorRng::seed_from(11);
            let mut lin = ProtectedLinear::new("p", 6, 8, AttnOp::Ffn1, &mut rng);
            let x = rng.normal_matrix(4, 6, 1.0);
            let plain = lin.inner.forward_inference(&x);
            for active in [false, true] {
                let (y, report) = guarded_forward(&mut lin, &x, active, None);
                assert_eq!(y, plain, "active={active}");
                assert!(report.is_quiet());
            }
        }

        #[test]
        fn injected_extreme_is_corrected_to_exact_bits() {
            let mut rng = TensorRng::seed_from(12);
            let mut lin = ProtectedLinear::new("p", 6, 8, AttnOp::Ffn1, &mut rng);
            let x = rng.normal_matrix(4, 6, 1.0);
            let plain = lin.inner.forward_inference(&x);
            let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
                assert_eq!(site.op, AttnOp::Ffn1);
                m.set(1, 3, f32::NEG_INFINITY);
            };
            let (y, report) = guarded_forward(&mut lin, &x, true, Some(&mut hook));
            assert_eq!(y, plain, "exact replay must restore original bits");
            assert_eq!(report.correction_count(), 1);
            assert_eq!(report.corrections[0].section, SectionId::FeedForward);
            assert_eq!(report.unrecovered, 0);
            // The healed activation is what backward consumes.
            let dy = rng.normal_matrix(4, 8, 1.0);
            let dx = lin.backward(&dy);
            assert!(dx.all_finite());
        }

        #[test]
        fn inactive_section_lets_fault_through() {
            let mut rng = TensorRng::seed_from(13);
            let mut lin = ProtectedLinear::new("p", 5, 5, AttnOp::Ffn2, &mut rng);
            let x = rng.normal_matrix(3, 5, 1.0);
            let mut hook = |_: FaultSite, m: &mut CheckedMatrix| m.set(0, 0, f32::NAN);
            let (y, report) = guarded_forward(&mut lin, &x, false, Some(&mut hook));
            assert!(!y.all_finite(), "no detection when the section is off");
            assert_eq!(report.correction_count(), 0);
        }
    }
}
