//! Affine layer `y = x·W + b` with manual backprop.

use crate::param::{HasParams, Param};
use attn_tensor::gemm::{matmul, matmul_nt, matmul_tn};
use attn_tensor::ops::{add_bias_inplace, col_sums};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;

/// Dense affine layer.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight, `in_dim × out_dim`.
    pub w: Param,
    /// Bias, `1 × out_dim`.
    pub b: Param,
    cache_x: Option<Matrix>,
}

impl Linear {
    /// Xavier-initialised layer.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        Self {
            w: Param::new(format!("{name}.w"), rng.xavier_matrix(in_dim, out_dim)),
            b: Param::zeros(format!("{name}.b"), 1, out_dim),
            cache_x: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass, caching the input for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = matmul(x, &self.w.value);
        add_bias_inplace(&mut y, self.b.bias());
        self.cache_x = Some(x.clone());
        y
    }

    /// Forward without caching (inference / timing runs).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = matmul(x, &self.w.value);
        add_bias_inplace(&mut y, self.b.bias());
        y
    }

    /// Backward pass: accumulates `dW = xᵀ·dy`, `db = Σrows(dy)`, returns
    /// `dx = dy·Wᵀ`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward before forward");
        self.w.accumulate(&matmul_tn(&x, dy));
        self.b
            .accumulate(&Matrix::from_vec(1, dy.cols(), col_sums(dy)));
        matmul_nt(dy, &self.w.value)
    }
}

impl HasParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check against a scalar loss `Σ(y ⊙ dy)`.
    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = TensorRng::seed_from(1);
        let mut lin = Linear::new("t", 5, 4, &mut rng);
        let x = rng.normal_matrix(3, 5, 1.0);
        let dy = rng.normal_matrix(3, 4, 1.0);

        let _y = lin.forward(&x);
        let dx = lin.backward(&dy);

        let loss = |l: &Linear, xx: &Matrix| -> f32 {
            let y = l.forward_inference(xx);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };

        let eps = 1e-3;
        // dX
        for r in 0..3 {
            for c in 0..5 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss(&lin, &xp) - loss(&lin, &xm)) / (2.0 * eps);
                assert!((fd - dx[(r, c)]).abs() < 2e-2, "dx ({r},{c})");
            }
        }
        // dW
        for r in 0..5 {
            for c in 0..4 {
                let mut lp = lin.clone();
                lp.w.value[(r, c)] += eps;
                let mut lm = lin.clone();
                lm.w.value[(r, c)] -= eps;
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
                assert!(
                    (fd - lin.w.grad[(r, c)]).abs() < 2e-2,
                    "dW ({r},{c}): fd {fd} vs {}",
                    lin.w.grad[(r, c)]
                );
            }
        }
        // db
        for c in 0..4 {
            let mut lp = lin.clone();
            lp.b.value[(0, c)] += eps;
            let mut lm = lin.clone();
            lm.b.value[(0, c)] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((fd - lin.b.grad[(0, c)]).abs() < 2e-2, "db {c}");
        }
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = TensorRng::seed_from(2);
        let mut lin = Linear::new("t", 3, 2, &mut rng);
        lin.b.value[(0, 0)] = 10.0;
        let x = Matrix::zeros(4, 3);
        let y = lin.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert!((y[(0, 0)] - 10.0).abs() < 1e-6);
        assert!((y[(0, 1)]).abs() < 1e-6);
    }

    #[test]
    fn gradient_accumulates_across_calls() {
        let mut rng = TensorRng::seed_from(3);
        let mut lin = Linear::new("t", 3, 3, &mut rng);
        let x = rng.normal_matrix(2, 3, 1.0);
        let dy = rng.normal_matrix(2, 3, 1.0);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        let g1 = lin.w.grad.clone();
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        assert!(lin.w.grad.approx_eq(&g1.scaled(2.0), 1e-5, 1e-5));
    }

    #[test]
    #[should_panic]
    fn backward_without_forward_panics() {
        let mut rng = TensorRng::seed_from(4);
        let mut lin = Linear::new("t", 2, 2, &mut rng);
        let _ = lin.backward(&Matrix::zeros(1, 2));
    }
}
