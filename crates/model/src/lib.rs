//! # attn-model
//!
//! Miniature transformer LLM training stack: the substrate standing in for
//! the paper's PyTorch + HuggingFace setup (§5.1).
//!
//! * [`param`] / [`optim`] — parameters with gradients and AdamW.
//! * [`linear`], [`embedding`], [`layernorm`], [`ffn`] — layers with
//!   hand-written backprop, each finite-difference-tested.
//! * [`attn_layer`] — multi-head attention wrapping the ATTNChecker
//!   protected forward, plus its backward pass.
//! * [`block`] — pre-LN / post-LN transformer blocks.
//! * [`model`] — the four studied architectures (BERT, RoBERTa, GPT-2,
//!   GPT-Neo) as sequence classifiers, with fault-injection plumbing.
//! * [`data`] — a synthetic MRPC-style paraphrase corpus.
//! * [`trainer`] — fine-tuning loop with non-trainable-state detection and
//!   attention/step timing (Figs 6, 7, 11).
//! * [`decode`] — KV-cached autoregressive decode front-end for the causal
//!   architectures, bit-identical to the full protected forward.
//! * [`flops`] — paper-scale flop accounting behind Table 3.

pub mod attn_layer;
pub mod block;
pub mod data;
pub mod decode;
pub mod embedding;
pub mod ffn;
pub mod flops;
pub mod layernorm;
pub mod linear;
pub mod model;
pub mod optim;
pub mod param;
pub mod tape;
pub mod trainer;

pub use data::{Example, SyntheticMrpc};
pub use decode::DecodeState;
pub use model::{cross_entropy, InjectionSpec, ModelArch, ModelConfig, TransformerModel};
pub use optim::AdamW;
pub use param::{Grads, HasParams, Param};
pub use tape::ExampleTape;
pub use trainer::{StepOutcome, Trainer};
