//! Workspace-level façade for the ATTNChecker reproduction.
//!
//! Re-exports the member crates so the `examples/` binaries and the
//! cross-crate integration tests in `tests/` have one import root. See
//! `README.md` for the tour and `DESIGN.md` for the paper → module map.

pub use attn_ckpt as ckpt;
pub use attn_fault as fault;
pub use attn_gpusim as gpusim;
pub use attn_infer as infer;
pub use attn_model as model;
pub use attn_serve as serve;
pub use attn_tensor as tensor;
pub use attnchecker as abft;
