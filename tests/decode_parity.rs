//! The decode/full-forward parity contract, pinned through the public API:
//! a KV-cached `decode_step` sequence is **bit-identical** to re-running
//! the full protected forward over the grown prefix — at any prefill
//! split, at any engine worker count, and after an injected extreme value
//! in any decode-time GEMM has been detected and exactly corrected.

use attn_fault::FaultKind;
use attn_infer::{DecodeEngine, DecodeSession, Sampling};
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::attention::{AttnOp, SectionToggles};
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;

fn lm_config() -> ModelConfig {
    let mut cfg = ModelConfig::gpt2();
    cfg.hidden = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.vocab = 48;
    cfg.num_classes = 48;
    cfg.max_seq = 32;
    cfg
}

fn lm_model(protection: ProtectionConfig) -> TransformerModel {
    let mut rng = TensorRng::seed_from(2025);
    TransformerModel::new(lm_config(), protection, &mut rng)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn decode_is_bit_identical_to_full_forward_at_several_prefix_lengths() {
    let m = lm_model(ProtectionConfig::full());
    let tokens: Vec<usize> = (0..12).map(|i| (i * 29 + 7) % 48).collect();
    for prefill in [1usize, 3, 6, 10] {
        let mut state = m.new_decode_state();
        let mut report = AbftReport::default();
        let _ = m.prefill(
            &tokens[..prefill],
            &mut state,
            SectionToggles::all(),
            &mut report,
        );
        for t in prefill..tokens.len() {
            let dec = m.decode_step(
                tokens[t],
                &mut state,
                SectionToggles::all(),
                None,
                &mut report,
            );
            let mut r = AbftReport::default();
            let (full, _) = m.forward_tape(&tokens[..=t], SectionToggles::all(), None, &mut r);
            assert_eq!(
                bits(&dec),
                bits(&full),
                "prefill={prefill} t={t}: decode logits diverged from full forward"
            );
        }
        assert!(report.is_quiet(), "fault-free decode must be quiet");
    }
}

#[test]
fn batched_sessions_are_bit_identical_at_any_worker_count() {
    let prompts: [&[usize]; 5] = [&[1, 2, 3], &[40, 4], &[9, 8, 7, 6, 5], &[17], &[30, 31]];
    let run = |workers: usize| {
        let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        engine.set_parallelism(workers);
        let mut sessions: Vec<DecodeSession> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| engine.open_session(p, i as u64))
            .collect();
        let mut steps = Vec::new();
        for _ in 0..7 {
            steps.push(engine.step_batch(&mut sessions, Sampling::Temperature(0.7)));
        }
        let tails: Vec<Vec<u32>> = sessions.iter().map(|s| bits(s.logits())).collect();
        let reports: Vec<AbftReport> = sessions.iter().map(|s| s.report.clone()).collect();
        (steps, tails, reports)
    };
    let reference = run(1);
    for workers in [2, 4, 7] {
        assert_eq!(run(workers), reference, "worker count {workers} diverged");
    }
}

#[test]
fn injected_extreme_in_each_decode_gemm_is_exactly_corrected() {
    let m = lm_model(ProtectionConfig::full());
    let tokens: Vec<usize> = (0..9).map(|i| (i * 13 + 5) % 48).collect();
    let prefill = 4usize;

    // Fault-free reference logits for every decoded position.
    let mut clean: Vec<Vec<u32>> = Vec::new();
    {
        let mut state = m.new_decode_state();
        let mut r = AbftReport::default();
        let _ = m.prefill(
            &tokens[..prefill],
            &mut state,
            SectionToggles::all(),
            &mut r,
        );
        for &tok in &tokens[prefill..] {
            let l = m.decode_step(tok, &mut state, SectionToggles::all(), None, &mut r);
            clean.push(bits(&l));
        }
    }

    const SITES: [AttnOp; 8] = [
        AttnOp::Q,
        AttnOp::K,
        AttnOp::V,
        AttnOp::AS,
        AttnOp::CL,
        AttnOp::O,
        AttnOp::Ffn1,
        AttnOp::Ffn2,
    ];
    for op in SITES {
        for kind in [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf] {
            let mut state = m.new_decode_state();
            let mut report = AbftReport::default();
            let _ = m.prefill(
                &tokens[..prefill],
                &mut state,
                SectionToggles::all(),
                &mut report,
            );
            let spec = InjectionSpec {
                layer: 1,
                op,
                head: 1,
                row: 0,
                col: 9,
                kind,
            };
            for (idx, t) in (prefill..tokens.len()).enumerate() {
                // Strike mid-generation, with a grown cache behind it.
                let inject = (idx == 2).then_some(&spec);
                let l = m.decode_step(
                    tokens[t],
                    &mut state,
                    SectionToggles::all(),
                    inject,
                    &mut report,
                );
                assert_eq!(
                    bits(&l),
                    clean[idx],
                    "{op:?}/{kind:?} step {idx}: corrected decode must match fault-free bits"
                );
            }
            assert!(
                report.correction_count() > 0,
                "{op:?}/{kind:?}: no corrections recorded"
            );
            assert_eq!(report.unrecovered, 0, "{op:?}/{kind:?}");
        }
    }
}

#[test]
fn unprotected_decode_fault_reaches_the_logits() {
    let m = lm_model(ProtectionConfig::off());
    let tokens: Vec<usize> = (0..6).collect();
    let mut state = m.new_decode_state();
    let mut report = AbftReport::default();
    let _ = m.prefill(
        &tokens[..3],
        &mut state,
        SectionToggles::none(),
        &mut report,
    );
    let spec = InjectionSpec {
        layer: 0,
        op: AttnOp::Q,
        head: 0,
        row: 0,
        col: 3,
        kind: FaultKind::NaN,
    };
    let logits = m.decode_step(
        tokens[3],
        &mut state,
        SectionToggles::none(),
        Some(&spec),
        &mut report,
    );
    assert!(!logits.all_finite());
    assert_eq!(report.correction_count(), 0);
}

#[test]
fn facade_reexports_the_inference_stack() {
    // The workspace façade exposes the serving crate like the others.
    use attnchecker_repro::infer::Sampling as S;
    assert_eq!(S::Greedy, S::Greedy);
}
