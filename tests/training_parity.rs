//! The Fig 6 invariant as an executable test: training under per-step
//! fault injection with ATTNChecker produces the *same* parameter
//! trajectory as fault-free training, because every extreme value is
//! corrected back to its original bits (up to reconstruction round-off).

use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::{HasParams, SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

fn build(config: &ModelConfig, protection: ProtectionConfig, seed: u64) -> Trainer {
    let mut rng = TensorRng::seed_from(seed);
    Trainer::new(
        TransformerModel::new(config.clone(), protection, &mut rng),
        1e-3,
    )
}

fn tiny() -> ModelConfig {
    let mut c = ModelConfig::bert_base();
    c.hidden = 32;
    c.heads = 2;
    c.layers = 2;
    c
}

#[test]
fn faulty_protected_trajectory_matches_fault_free() {
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 1);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();

    let mut clean = build(&config, ProtectionConfig::off(), 77);
    let mut protected = build(&config, ProtectionConfig::full(), 77);

    let mut rng = TensorRng::seed_from(888);
    let sites = AttnOp::STUDY;
    let kinds = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf];
    for step in 0..10 {
        let co = clean.train_step(&batch);
        let spec = InjectionSpec {
            layer: rng.index(config.layers),
            op: sites[rng.index(sites.len())],
            head: rng.index(config.heads),
            row: rng.index(1 << 12),
            col: rng.index(1 << 12),
            kind: kinds[rng.index(kinds.len())],
        };
        let po = protected.train_step_injected(&batch, Some((step % 4, spec)));
        assert!(!po.non_trainable);
        assert!(
            (co.loss - po.loss).abs() < 5e-3,
            "step {step}: loss diverged {} vs {}",
            co.loss,
            po.loss
        );
    }

    // Parameter trajectories stay together.
    let mut clean_params = Vec::new();
    clean
        .model
        .visit_params(&mut |p| clean_params.push(p.value.clone()));
    let mut prot_params = Vec::new();
    protected
        .model
        .visit_params(&mut |p| prot_params.push(p.value.clone()));
    for (a, b) in clean_params.iter().zip(&prot_params) {
        assert!(
            a.approx_eq(b, 1e-2, 1e-3),
            "parameters diverged after 10 faulty-but-protected steps"
        );
    }
}

#[test]
fn unprotected_run_with_the_same_faults_diverges() {
    // Control experiment: the same fault schedule without protection must
    // produce a different (usually broken) trajectory — otherwise the
    // parity test above would be vacuous.
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 1);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();
    let mut unprotected = build(&config, ProtectionConfig::off(), 77);
    let spec = InjectionSpec {
        layer: 0,
        op: AttnOp::Q,
        head: 0,
        row: 3,
        col: 5,
        kind: FaultKind::NaN,
    };
    let out = unprotected.train_step_injected(&batch, Some((1, spec)));
    assert!(
        out.non_trainable,
        "NaN without protection must break training"
    );
}

#[test]
fn frequency_gated_protection_still_converges_cleanly() {
    // At f = 0.5 the unchecked executions carry no faults here, so training
    // must be identical to fault-free training (gates only skip detection).
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 2);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();
    let mut clean = build(&config, ProtectionConfig::off(), 31);
    let mut gated = build(
        &config,
        ProtectionConfig::with_frequencies(0.5, 0.5, 0.5),
        31,
    );
    for _ in 0..6 {
        let a = clean.train_step(&batch);
        let b = gated.train_step(&batch);
        assert!((a.loss - b.loss).abs() < 1e-4);
    }
}
