//! Determinism parity suite for the data-parallel training step.
//!
//! The tape refactor's contract: `Trainer::train_step*` produces the
//! **same bits** — losses, merged reports, and every post-step parameter —
//! at any worker count, because per-item work is isolated (one tape, one
//! report, one gradient buffer per batch item) and the reduction runs in
//! fixed batch order regardless of how items were scheduled.

use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::{Example, HasParams, SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

fn tiny() -> ModelConfig {
    let mut c = ModelConfig::bert_base();
    c.hidden = 32;
    c.heads = 2;
    c.layers = 2;
    c
}

fn build(config: &ModelConfig, protection: ProtectionConfig, workers: usize) -> Trainer {
    let mut rng = TensorRng::seed_from(4242);
    let mut tr = Trainer::new(
        TransformerModel::new(config.clone(), protection, &mut rng),
        1e-3,
    );
    tr.set_parallelism(workers);
    tr
}

fn param_bits(tr: &mut Trainer) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    tr.model.visit_params(&mut |p| {
        out.push(p.value.data().iter().map(|v| v.to_bits()).collect());
    });
    out
}

/// Run `steps` clean training steps at the given worker count; returns the
/// per-step loss bits and the final parameter bits.
fn run_clean(workers: usize, steps: usize) -> (Vec<u32>, Vec<Vec<u32>>) {
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 9);
    let batch: Vec<&Example> = ds.examples.iter().take(8).collect();
    let mut tr = build(&config, ProtectionConfig::full(), workers);
    let losses = (0..steps)
        .map(|_| tr.train_step(&batch).loss.to_bits())
        .collect();
    (losses, param_bits(&mut tr))
}

#[test]
fn clean_steps_bit_identical_at_any_thread_count() {
    let (base_losses, base_params) = run_clean(1, 4);
    for workers in [2, 4, 7] {
        let (losses, params) = run_clean(workers, 4);
        assert_eq!(
            base_losses, losses,
            "{workers} workers: per-step loss bits diverged from sequential"
        );
        assert_eq!(
            base_params, params,
            "{workers} workers: post-training parameter bits diverged"
        );
    }
}

/// One injected-fault step at the given worker count; returns the outcome
/// plus the final parameter bits.
fn run_injected(workers: usize) -> (attn_model::StepOutcome, Vec<Vec<u32>>) {
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 9);
    let batch: Vec<&Example> = ds.examples.iter().take(6).collect();
    let mut tr = build(&config, ProtectionConfig::full(), workers);
    let spec = InjectionSpec {
        layer: 1,
        op: AttnOp::AS,
        head: 1,
        row: 3,
        col: 7,
        kind: FaultKind::NaN,
    };
    let out = tr.train_step_injected(&batch, Some((2, spec)));
    (out, param_bits(&mut tr))
}

#[test]
fn injected_step_bit_identical_and_report_localised() {
    let (seq_out, seq_params) = run_injected(1);
    let (par_out, par_params) = run_injected(4);

    // The fault is absorbed identically under both schedules. Reports are
    // compared field-by-field with value *bits*: `AbftReport`'s PartialEq
    // would reject `NaN != NaN` on the corrupted old_value it recorded.
    assert!(!seq_out.non_trainable && !par_out.non_trainable);
    assert_eq!(seq_out.loss.to_bits(), par_out.loss.to_bits());
    assert_eq!(seq_out.report.detections, par_out.report.detections);
    assert_eq!(
        seq_out.report.sections_checked,
        par_out.report.sections_checked
    );
    assert_eq!(
        seq_out.report.correction_count(),
        par_out.report.correction_count()
    );
    for (a, b) in seq_out
        .report
        .corrections
        .iter()
        .zip(&par_out.report.corrections)
    {
        assert_eq!(
            (a.section, a.head, a.row, a.col),
            (b.section, b.head, b.row, b.col)
        );
        assert_eq!(a.old_value.to_bits(), b.old_value.to_bits());
        assert_eq!(a.new_value.to_bits(), b.new_value.to_bits());
    }
    assert_eq!(seq_params, par_params, "post-step parameter bits diverged");

    // Only the targeted batch item's report shows ABFT activity.
    for out in [&seq_out, &par_out] {
        assert_eq!(out.item_reports.len(), 6);
        assert!(out.item_reports[2].correction_count() > 0);
        assert_eq!(out.item_reports[2].unrecovered, 0);
        for (i, r) in out.item_reports.iter().enumerate() {
            if i != 2 {
                assert!(r.is_quiet(), "item {i} perturbed by item 2's fault: {r}");
            }
        }
    }
}

#[test]
fn frequency_gated_schedule_advances_identically_in_parallel() {
    // The frequency gates tick once per *step* (not per item or worker),
    // so a gated config must check/skip the same sections under both
    // schedules, step for step.
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 9);
    let batch: Vec<&Example> = ds.examples.iter().take(4).collect();
    let mut seq = build(
        &config,
        ProtectionConfig::with_frequencies(0.5, 0.5, 0.5),
        1,
    );
    let mut par = build(
        &config,
        ProtectionConfig::with_frequencies(0.5, 0.5, 0.5),
        4,
    );
    for step in 0..4 {
        let a = seq.train_step(&batch);
        let b = par.train_step(&batch);
        assert_eq!(
            a.report.sections_checked, b.report.sections_checked,
            "step {step}"
        );
        assert_eq!(
            a.report.sections_skipped, b.report.sections_skipped,
            "step {step}"
        );
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "step {step}");
    }
}

#[test]
fn workers_never_exceed_batch_size() {
    let config = tiny();
    let ds = SyntheticMrpc::generate(4, config.vocab, 16, 9);
    let batch: Vec<&Example> = ds.examples.iter().take(2).collect();
    let mut tr = build(&config, ProtectionConfig::off(), 16);
    let out = tr.train_step(&batch);
    assert_eq!(out.workers, 2, "fan-out wider than the batch is waste");
}
