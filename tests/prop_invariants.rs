//! Property-based tests (proptest) over the core ABFT invariants.

use attn_fault::pattern::{classify, shape_of, PatternClass};
use attn_fault::FaultKind;
use attn_tensor::gemm;
use attn_tensor::ops::softmax_rows;
use attn_tensor::Matrix;
use attnchecker::checked::CheckedMatrix;
use attnchecker::checksum::{col_checksums, vector_sums};
use attnchecker::config::{AbftConfig, Strategy as AbftStrategy};
use attnchecker::detect::full_correct;
use attnchecker::eec::{eec_correct_vector, VectorVerdict};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// EEC-ABFT corrects any single extreme error at any position.
    #[test]
    fn eec_corrects_any_single_extreme_fault(
        v in finite_vec(2..48),
        pos_frac in 0.0f64..1.0,
        kind_pick in 0usize..4,
    ) {
        let (csum, wsum, _) = vector_sums(&v);
        let pos = ((pos_frac * v.len() as f64) as usize).min(v.len() - 1);
        let kind = [FaultKind::Inf, FaultKind::NegInf, FaultKind::NaN, FaultKind::NearInf][kind_pick];
        let mut corrupted = v.clone();
        corrupted[pos] = kind.apply(corrupted[pos]);
        let verdict = eec_correct_vector(&mut corrupted, csum, wsum, &AbftConfig::default());
        let corrected_at_pos =
            matches!(verdict, VectorVerdict::Corrected { index, .. } if index == pos);
        prop_assert!(corrected_at_pos, "verdict {:?} at pos {} kind {:?}", verdict, pos, kind);
        // Reconstruction error is bounded by round-off on the partial sums.
        let tol = 1e-3 * (v.iter().map(|x| x.abs()).sum::<f32>() + 1.0);
        prop_assert!((corrupted[pos] - v[pos]).abs() <= tol,
            "restored {} vs original {}", corrupted[pos], v[pos]);
    }

    /// A clean vector is never flagged.
    #[test]
    fn eec_never_false_positives_on_clean_vectors(v in finite_vec(1..64)) {
        let (csum, wsum, _) = vector_sums(&v);
        let mut w = v.clone();
        let verdict = eec_correct_vector(&mut w, csum, wsum, &AbftConfig::default());
        prop_assert_eq!(verdict, VectorVerdict::Clean);
        prop_assert_eq!(w, v);
    }

    /// Checksum linearity: colsums(A·B) == colsum-rows(A)·B within round-off.
    #[test]
    fn checksum_linearity_through_random_gemm(
        a in matrix(1..12, 1..12),
        cols_b in 1usize..10,
    ) {
        let k = a.cols();
        let b = Matrix::from_fn(k, cols_b, |r, c| ((r * 7 + c * 3) % 11) as f32 / 11.0 - 0.5);
        let c = gemm::matmul(&a, &b);
        let direct = col_checksums(&c);
        let fused = gemm::matmul(&col_checksums(&a), &b);
        let scale = a.rows() as f32 * k as f32;
        prop_assert!(direct.approx_eq(&fused, 1e-3, 1e-3 * scale.max(1.0)));
    }

    /// Fused augmented GEMM always yields a self-consistent CheckedMatrix.
    #[test]
    fn fused_product_is_self_consistent(
        a in matrix(2..10, 2..10),
        cols_b in 2usize..10,
    ) {
        let b = Matrix::from_fn(a.cols(), cols_b, |r, c| ((r + 2 * c) % 7) as f32 / 7.0 - 0.4);
        let ca = CheckedMatrix::encode_cols(&a, AbftStrategy::Fused);
        let cb = CheckedMatrix::encode_rows(&b, AbftStrategy::Fused);
        let cc = ca.matmul(&cb);
        prop_assert!(cc.max_checksum_discrepancy() < 1e-2,
            "discrepancy {}", cc.max_checksum_discrepancy());
    }

    /// full_correct heals any single extreme fault planted anywhere in a
    /// doubly-checksummed matrix.
    #[test]
    fn full_correct_heals_any_single_fault(
        a in matrix(3..10, 3..10),
        rf in 0.0f64..1.0,
        cf in 0.0f64..1.0,
        kind_pick in 0usize..3,
    ) {
        let mut ca = CheckedMatrix::encode_both(&a, AbftStrategy::Fused);
        let r = ((rf * a.rows() as f64) as usize).min(a.rows() - 1);
        let c = ((cf * a.cols() as f64) as usize).min(a.cols() - 1);
        let kind = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf][kind_pick];
        ca.set(r, c, kind.apply(ca.get(r, c)));
        let summary = full_correct(&mut ca, &AbftConfig::default());
        prop_assert_eq!(summary.unrecovered, 0);
        prop_assert!(summary.total_fixes() >= 1);
        prop_assert!(ca.logical().approx_eq(&a, 1e-2, 1e-2));
    }

    /// The pattern classifier recovers the shape of constructed patterns.
    #[test]
    fn classifier_recovers_constructed_shapes(
        rows in 3usize..12,
        cols in 3usize..12,
        row_pick in 0usize..12,
        col_pick in 0usize..12,
        shape in 0usize..3,
    ) {
        let reference = Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32 * 0.1);
        let mut corrupted = reference.clone();
        let r0 = row_pick % rows;
        let c0 = col_pick % cols;
        match shape {
            0 => corrupted[(r0, c0)] = f32::NAN,
            1 => {
                for c in 0..cols {
                    corrupted[(r0, c)] = f32::INFINITY;
                }
            }
            _ => {
                for r in 0..rows {
                    corrupted[(r, c0)] = f32::NAN;
                }
            }
        }
        let rep = classify(&reference, &corrupted, 1e-4);
        let ok = match shape {
            0 => rep.pattern == PatternClass::ZeroD { row: r0, col: c0 },
            1 => {
                matches!(rep.pattern, PatternClass::OneRow { row } if row == r0)
                    // A 1-column matrix makes a full row a single element.
                    || (cols == 1 && matches!(rep.pattern, PatternClass::ZeroD { .. }))
            }
            _ => {
                matches!(rep.pattern, PatternClass::OneCol { col } if col == c0)
                    || (rows == 1 && matches!(rep.pattern, PatternClass::ZeroD { .. }))
            }
        };
        prop_assert!(ok, "shape {} classified as {:?}", shape, rep.pattern);
    }

    /// shape_of is permutation-invariant.
    #[test]
    fn shape_of_is_order_invariant(
        mut positions in prop::collection::vec((0usize..8, 0usize..8), 0..12),
    ) {
        let forward = shape_of(&positions);
        positions.reverse();
        prop_assert_eq!(forward, shape_of(&positions));
    }

    /// Softmax output rows always form a probability distribution for
    /// finite inputs.
    #[test]
    fn softmax_rows_are_distributions(m in matrix(1..8, 1..16)) {
        let y = softmax_rows(&m);
        for r in 0..y.rows() {
            let s: f32 = y.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(y.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// GEMM distributes over addition: (A+B)·C == A·C + B·C.
    #[test]
    fn gemm_distributes_over_addition(
        a in matrix(1..8, 1..8),
        seed in 0u64..1000,
    ) {
        use attn_tensor::rng::TensorRng;
        let mut rng = TensorRng::seed_from(seed);
        let b = rng.normal_matrix(a.rows(), a.cols(), 1.0);
        let c = rng.normal_matrix(a.cols(), 5, 1.0);
        let lhs = gemm::matmul(&a.add(&b), &c);
        let rhs = gemm::matmul(&a, &c).add(&gemm::matmul(&b, &c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3, 1e-3));
    }
}
