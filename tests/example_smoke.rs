//! Smoke coverage for every `examples/` binary, so they cannot silently
//! rot: each one must build, run to completion, and print something.
//!
//! The examples are run in release mode — the tier-1 pipeline builds
//! release artifacts first, so these are cheap re-invocations; from a cold
//! cache the first spawn pays one compile.

use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "quickstart",
    "adaptive_tuning",
    "fault_injection_study",
    "protected_decode",
    "protected_ffn",
    "scale_projection",
    "train_with_protection",
];

#[test]
fn all_examples_run_cleanly() {
    for name in EXAMPLES {
        let out = Command::new(env!("CARGO"))
            .args(["run", "--release", "--quiet", "--example", name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            out.status.success(),
            "example `{name}` exited with {}:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example `{name}` ran but printed nothing"
        );
    }
}
