//! Property tests for the masked-softmax contract: no additive mask — not
//! even one that fully masks rows with literal `-INF` — may fabricate
//! NaNs, while the documented NaN-poisoning fault contract is preserved.

use attn_tensor::ops::{apply_additive_mask, softmax_rows, softmax_rows_backward, MASK_NEG};
use attn_tensor::Matrix;
use proptest::prelude::*;

/// A finite logits matrix and an additive mask over it whose entries are
/// 0, `MASK_NEG`, or literal `-INF`, with at least one fully-masked row.
fn logits_and_mask() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6, 1usize..8).prop_flat_map(|(rows, cols)| {
        let logits = prop::collection::vec(-30.0f32..30.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data));
        // Per-cell mask choice plus the index of a row forced fully masked.
        let mask_cells = prop::collection::vec(0usize..3, rows * cols);
        let forced_row = 0usize..rows;
        let hard_inf = 0usize..2;
        (logits, mask_cells, forced_row, hard_inf).prop_map(
            move |(logits, cells, forced, hard_inf)| {
                let blocked = if hard_inf == 1 {
                    f32::NEG_INFINITY
                } else {
                    MASK_NEG
                };
                let mut mask = Matrix::from_fn(rows, cols, |r, c| match cells[r * cols + c] {
                    0 => 0.0,
                    1 => MASK_NEG,
                    _ => blocked,
                });
                for c in 0..cols {
                    mask[(forced, c)] = blocked;
                }
                (logits, mask)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Masked softmax never yields NaN for any additive mask with at least
    /// one fully-masked row; every row is either a probability
    /// distribution or exactly zero.
    #[test]
    fn masked_softmax_never_yields_nan((logits, mask) in logits_and_mask()) {
        let mut x = logits;
        apply_additive_mask(&mut x, &mask);
        let y = softmax_rows(&x);
        prop_assert!(y.all_finite(), "masked softmax fabricated non-finite values");
        for r in 0..y.rows() {
            let row = y.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)), "row {r} out of range");
            let s: f32 = row.iter().sum();
            let fully_inf_masked =
                (0..y.cols()).all(|c| mask[(r, c)] == f32::NEG_INFINITY);
            if fully_inf_masked {
                prop_assert!(row.iter().all(|&v| v == 0.0), "fully-masked row {r} must be zero");
            } else {
                prop_assert!((s - 1.0).abs() < 1e-4 || s == 0.0, "row {r} sums to {s}");
            }
        }
    }

    /// The backward of a masked softmax is finite, and exactly zero on
    /// fully-masked (all-zero forward) rows.
    #[test]
    fn masked_softmax_backward_stays_finite((logits, mask) in logits_and_mask()) {
        let mut x = logits;
        apply_additive_mask(&mut x, &mask);
        let y = softmax_rows(&x);
        let dy = Matrix::from_fn(y.rows(), y.cols(), |r, c| ((r * 7 + c * 3) as f32).sin());
        let dx = softmax_rows_backward(&y, &dy);
        prop_assert!(dx.all_finite());
        for r in 0..y.rows() {
            if y.row(r).iter().all(|&v| v == 0.0) {
                prop_assert!(
                    dx.row(r).iter().all(|&v| v == 0.0),
                    "zero forward row {r} must have zero gradient"
                );
            }
        }
    }

    /// The NaN-poisoning fault contract survives the masked-row fix: a NaN
    /// planted in any row still poisons exactly that row.
    #[test]
    fn nan_poisoning_contract_is_preserved(
        (logits, mask) in logits_and_mask(),
        victim_frac in 0.0f64..1.0,
    ) {
        let mut x = logits;
        apply_additive_mask(&mut x, &mask);
        let victim = ((victim_frac * x.rows() as f64) as usize).min(x.rows() - 1);
        x[(victim, 0)] = f32::NAN;
        let y = softmax_rows(&x);
        prop_assert!(y.row(victim).iter().all(|v| v.is_nan()), "NaN must poison its row");
        for r in 0..y.rows() {
            if r != victim {
                prop_assert!(y.row(r).iter().all(|v| !v.is_nan()), "NaN leaked to row {r}");
            }
        }
    }
}
