//! End-to-end detection/correction campaign (the paper's §5.2 claim:
//! "all errors can be detected and successfully corrected").
//!
//! Every fault kind × attention site × model architecture, injected during
//! protected training steps, must be corrected with no unrecovered errors
//! and no non-trainable state.

use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::SyntheticMrpc;
use attn_model::Trainer;
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

fn trainer_for(config: &ModelConfig, seed: u64) -> Trainer {
    let mut rng = TensorRng::seed_from(seed);
    Trainer::new(
        TransformerModel::new(config.clone(), ProtectionConfig::full(), &mut rng),
        1e-3,
    )
}

fn small_config(mut config: ModelConfig) -> ModelConfig {
    config.hidden = 32;
    config.heads = 2;
    config.layers = 2;
    config
}

#[test]
fn every_site_and_kind_is_corrected_across_architectures() {
    for base in ModelConfig::paper_four() {
        let config = small_config(base);
        let ds = SyntheticMrpc::generate(8, config.vocab, 16, 3);
        let batch: Vec<_> = ds.examples.iter().take(4).collect();
        let mut rng = TensorRng::seed_from(0xC0FFEE);
        for op in AttnOp::STUDY {
            for kind in [
                FaultKind::Inf,
                FaultKind::NegInf,
                FaultKind::NaN,
                FaultKind::NearInf,
            ] {
                let mut trainer = trainer_for(&config, 17);
                let spec = InjectionSpec {
                    layer: rng.index(config.layers),
                    op,
                    head: rng.index(config.heads),
                    row: rng.index(1 << 12),
                    col: rng.index(1 << 12),
                    kind,
                };
                let out = trainer.train_step_injected(&batch, Some((0, spec)));
                assert!(
                    !out.non_trainable,
                    "{} / {op:?} / {kind:?}: became non-trainable",
                    config.name
                );
                assert!(
                    out.report.correction_count() > 0,
                    "{} / {op:?} / {kind:?}: fault was never corrected ({})",
                    config.name,
                    out.report
                );
                assert_eq!(
                    out.report.unrecovered, 0,
                    "{} / {op:?} / {kind:?}: unrecovered errors ({})",
                    config.name, out.report
                );
                assert!(out.loss.is_finite());
            }
        }
    }
}

#[test]
fn output_injection_is_corrected_too() {
    // AttnOp::O is outside the paper's Table 4 study set but inside S_O.
    let config = small_config(ModelConfig::bert_base());
    let ds = SyntheticMrpc::generate(8, config.vocab, 16, 3);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();
    let mut trainer = trainer_for(&config, 5);
    let spec = InjectionSpec {
        layer: 1,
        op: AttnOp::O,
        head: 0,
        row: 7,
        col: 13,
        kind: FaultKind::NaN,
    };
    let out = trainer.train_step_injected(&batch, Some((1, spec)));
    assert!(!out.non_trainable);
    assert!(out.report.correction_count() > 0);
    assert_eq!(out.report.unrecovered, 0);
}

#[test]
fn repeated_faults_over_many_steps_never_break_training() {
    let config = small_config(ModelConfig::gpt2());
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 9);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();
    let mut trainer = trainer_for(&config, 23);
    let mut rng = TensorRng::seed_from(555);
    let sites = AttnOp::STUDY;
    let kinds = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf];
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for step in 0..30 {
        let spec = InjectionSpec {
            layer: rng.index(config.layers),
            op: sites[rng.index(sites.len())],
            head: rng.index(config.heads),
            row: rng.index(1 << 12),
            col: rng.index(1 << 12),
            kind: kinds[rng.index(kinds.len())],
        };
        let out = trainer.train_step_injected(&batch, Some((step % 4, spec)));
        assert!(!out.non_trainable, "step {step} became non-trainable");
        first_loss.get_or_insert(out.loss);
        last_loss = out.loss;
    }
    // Training must actually make progress despite one fault per step.
    assert!(
        last_loss < first_loss.unwrap(),
        "no learning under faults: {} -> {last_loss}",
        first_loss.unwrap()
    );
}
