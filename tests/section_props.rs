//! Property tests (vendored proptest) for the composable guarded-GEMM
//! section API (`attnchecker::section`).
//!
//! The two invariants the builder must uphold for *arbitrary* chains of
//! encoded GEMMs (with optional bias steps and nonlinear
//! exit-and-re-encode boundaries):
//!
//! 1. **Transparency** — a fault-free guarded run reports nothing and its
//!    output is bit-identical to the unprotected computation.
//! 2. **Correction** — a single extreme value (INF/−INF/NaN/near-INF)
//!    injected at the section's detection point is always detected and
//!    corrected, and exact-replay refinement restores the original bits.

use attn_fault::FaultKind;
use attn_tensor::gemm;
use attn_tensor::ops::add_bias_inplace;
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::{AbftReport, SectionId};
use attnchecker::section::{replay_nn, GuardedSection};
use proptest::prelude::*;

/// One guarded GEMM step of a chain.
struct ChainLink {
    w: Matrix,
    bias: Option<Vec<f32>>,
    /// Apply a tanh nonlinearity (exit-and-re-encode) before this GEMM.
    exit_before: bool,
}

/// Deterministic chain derived from a seed: `n` links of widths in
/// `[2, 6]`, each with seed-dependent bias and exit flags.
fn build_links(mut in_cols: usize, n: usize, seed: u64) -> Vec<ChainLink> {
    let mut rng = TensorRng::seed_from(seed);
    (0..n)
        .map(|_| {
            let out_cols = 2 + (rng.index(5));
            let w = rng.normal_matrix(in_cols, out_cols, 1.0);
            let bias = (rng.index(2) == 1)
                .then(|| (0..out_cols).map(|c| (c as f32) * 0.25 - 0.5).collect());
            let exit_before = rng.index(2) == 1;
            in_cols = out_cols;
            ChainLink {
                w,
                bias,
                exit_before,
            }
        })
        .collect()
}

/// The unprotected reference computation.
fn run_plain(x: &Matrix, links: &[ChainLink]) -> Matrix {
    let mut cur = x.clone();
    for l in links {
        if l.exit_before {
            cur = cur.map(|v| v.tanh());
        }
        cur = gemm::matmul(&cur, &l.w);
        if let Some(b) = &l.bias {
            add_bias_inplace(&mut cur, b);
        }
    }
    cur
}

/// The same chain through the guarded-section builder, optionally striking
/// one element of the final product before the detection point.
fn run_guarded(
    x: &Matrix,
    links: &[ChainLink],
    fault: Option<(usize, usize, FaultKind)>,
) -> (Matrix, AbftReport) {
    let mut report = AbftReport::default();
    let sec = GuardedSection::begin(
        SectionId::FeedForward,
        &ProtectionConfig::full(),
        true,
        &mut report,
    );
    let mut cur = sec.encode_cols(x);
    let mut prev = x.clone();
    for l in links {
        if l.exit_before {
            cur = sec.exit_reencode_cols(&cur, |m| {
                for v in m.data_mut() {
                    *v = v.tanh();
                }
            });
        }
        prev = cur.logical();
        cur = sec.gemm(&cur, &sec.operand(&l.w));
        if let Some(b) = &l.bias {
            cur.add_bias(b);
        }
    }
    if let Some((rf, cf, kind)) = fault {
        let (r, c) = (rf % cur.rows(), cf % cur.cols());
        cur.set(r, c, kind.apply(cur.get(r, c)));
    }
    let last = links.last().expect("non-empty chain");
    let mut det = sec.detect(&mut cur, usize::MAX);
    if det.detections() > 0 {
        det.refine(&mut cur, |r, c| {
            replay_nn(prev.row(r), |kk| last.w[(kk, c)]) + last.bias.as_ref().map_or(0.0, |b| b[c])
        });
    }
    det.absorb(&mut report);
    (cur.logical(), report)
}

fn input_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..7, 2usize..7).prop_flat_map(|(r, c)| {
        prop::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault-free guarded chains are invisible: quiet report, bit-identical
    /// output.
    #[test]
    fn fault_free_chain_is_quiet_and_bit_identical(
        x in input_matrix(),
        n_links in 1usize..4,
        seed in 0u64..500,
    ) {
        let links = build_links(x.cols(), n_links, seed);
        let plain = run_plain(&x, &links);
        let (guarded, report) = run_guarded(&x, &links, None);
        prop_assert!(report.is_quiet(), "spurious activity: {report}");
        prop_assert_eq!(guarded, plain);
    }

    /// One injected extreme value at the detection point is always
    /// corrected, and replay refinement restores the exact original bits.
    #[test]
    fn single_extreme_fault_is_always_corrected(
        x in input_matrix(),
        n_links in 1usize..4,
        seed in 0u64..500,
        rf in 0usize..64,
        cf in 0usize..64,
        kind_pick in 0usize..4,
    ) {
        let kind = [FaultKind::Inf, FaultKind::NegInf, FaultKind::NaN, FaultKind::NearInf]
            [kind_pick];
        let links = build_links(x.cols(), n_links, seed);
        let plain = run_plain(&x, &links);
        let (guarded, report) = run_guarded(&x, &links, Some((rf, cf, kind)));
        prop_assert!(report.correction_count() >= 1, "{kind:?} not corrected: {report}");
        prop_assert_eq!(report.unrecovered, 0);
        prop_assert!(
            report.corrections.iter().all(|c| c.section == SectionId::FeedForward),
            "corrections attributed to the wrong section"
        );
        prop_assert_eq!(guarded, plain);
    }
}
