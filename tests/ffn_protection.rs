//! End-to-end FFN protection: the guarded-section pipeline extended beyond
//! the paper's attention scope must detect and correct INF/NaN/near-INF
//! faults striking either FFN GEMM *in place* (no rollback), during real
//! training steps, with the loss trajectory matching the fault-free run.

use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::{HasParams, SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::SectionId;

fn build(config: &ModelConfig, protection: ProtectionConfig, seed: u64) -> Trainer {
    let mut rng = TensorRng::seed_from(seed);
    Trainer::new(
        TransformerModel::new(config.clone(), protection, &mut rng),
        1e-3,
    )
}

fn tiny() -> ModelConfig {
    let mut c = ModelConfig::bert_base();
    c.hidden = 32;
    c.heads = 2;
    c.layers = 2;
    c
}

#[test]
fn ffn_faults_corrected_in_place_with_loss_parity() {
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 1);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();

    let mut clean = build(&config, ProtectionConfig::full(), 77);
    let mut faulty = build(&config, ProtectionConfig::full(), 77);

    let mut rng = TensorRng::seed_from(4242);
    let kinds = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf];
    for step in 0..9 {
        let co = clean.train_step(&batch);
        let spec = InjectionSpec {
            layer: rng.index(config.layers),
            op: AttnOp::FFN[step % 2],
            head: 0,
            row: rng.index(1 << 12),
            col: rng.index(1 << 12),
            kind: kinds[step % kinds.len()],
        };
        let po = faulty.train_step_injected(&batch, Some((step % 4, spec)));
        assert!(!po.non_trainable, "step {step}: became non-trainable");
        assert!(
            po.report
                .corrections
                .iter()
                .any(|c| c.section == SectionId::FeedForward),
            "step {step}: no S_FFN correction recorded ({})",
            po.report
        );
        assert_eq!(po.report.unrecovered, 0, "step {step}");
        // Rollback-free exact-replay correction ⇒ the corrected step is the
        // fault-free step.
        assert!(
            (co.loss - po.loss).abs() <= 1e-6,
            "step {step}: loss diverged {} vs {}",
            co.loss,
            po.loss
        );
    }

    // Parameter trajectories stay together after 9 faulty-but-corrected
    // steps (exact replay restores original bits, so divergence would mean
    // a correction fell back to approximate reconstruction somewhere).
    let mut clean_params = Vec::new();
    clean
        .model
        .visit_params(&mut |p| clean_params.push(p.value.clone()));
    let mut faulty_params = Vec::new();
    faulty
        .model
        .visit_params(&mut |p| faulty_params.push(p.value.clone()));
    for (a, b) in clean_params.iter().zip(&faulty_params) {
        assert!(
            a.approx_eq(b, 1e-6, 1e-6),
            "parameters diverged after FFN-fault-injected training"
        );
    }
}

#[test]
fn attention_only_protection_misses_ffn_faults() {
    // Control: the paper's original scope does not cover the FFN GEMMs, so
    // the same fault without S_FFN must break training — otherwise the test
    // above would be vacuous.
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 1);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();
    let mut trainer = build(&config, ProtectionConfig::attention_only(), 77);
    let spec = InjectionSpec {
        layer: 0,
        op: AttnOp::Ffn1,
        head: 0,
        row: 3,
        col: 5,
        kind: FaultKind::NaN,
    };
    let out = trainer.train_step_injected(&batch, Some((1, spec)));
    assert!(
        out.non_trainable,
        "unguarded FFN NaN must reach the loss and break training"
    );
}

#[test]
fn ffn_frequency_gate_schedules_ffn_checks() {
    // f_ffn = 0.5: the FFN section checks on every other step while the
    // attention sections (f = 1) check on all of them.
    let config = tiny();
    let ds = SyntheticMrpc::generate(16, config.vocab, 16, 1);
    let batch: Vec<_> = ds.examples.iter().take(2).collect();
    let mut trainer = build(&config, ProtectionConfig::full().ffn_frequency(0.5), 31);
    // 2 layers × 2 batch items: 4 section executions per kind per step.
    let per_step: usize = config.layers * batch.len();
    let checked: Vec<usize> = (0..4)
        .map(|_| trainer.train_step(&batch).report.sections_checked)
        .collect();
    let attn_only = 3 * per_step;
    let with_ffn = 4 * per_step;
    assert!(
        checked.iter().all(|&c| c == attn_only || c == with_ffn),
        "{checked:?}"
    );
    assert!(checked.contains(&attn_only), "{checked:?}");
    assert!(checked.contains(&with_ffn), "{checked:?}");
}
