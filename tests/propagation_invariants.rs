//! The paper's Table 2 propagation laws as executable cross-crate
//! assertions: where a fault lands decides the pattern shape in every
//! downstream matrix, across all four architectures' attention dataflow.

use attn_fault::pattern::{classify, PatternClass};
use attn_fault::FaultKind;
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::attention::{
    AttentionWeights, AttnOp, FaultSite, ForwardOptions, ProtectedAttention, SectionToggles,
};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;

struct Traces {
    scores: Matrix,
    ap: Matrix,
    cl: Matrix,
    o: Matrix,
}

fn run(
    attn: &ProtectedAttention,
    x: &Matrix,
    inject: Option<(AttnOp, FaultKind, usize, usize)>,
) -> Traces {
    let mut hook = move |site: FaultSite, m: &mut CheckedMatrix| {
        let Some((op, kind, r, c)) = inject else {
            return;
        };
        if site.op == op && site.head.unwrap_or(0) == 0 {
            let (r, c) = (r % m.rows(), c % m.cols());
            let old = m.get(r, c);
            m.set(r, c, kind.apply(old));
        }
    };
    let mut report = AbftReport::default();
    let out = attn.forward(
        x,
        ForwardOptions {
            mask: None,
            toggles: SectionToggles::none(),
            hook: inject.is_some().then_some(&mut hook as _),
        },
        &mut report,
    );
    Traces {
        scores: out.cache.scores[0].clone(),
        ap: out.cache.ap[0].clone(),
        cl: out.cache.cl.clone(),
        o: out.output,
    }
}

fn setup() -> (Matrix, ProtectedAttention, Traces) {
    let mut rng = TensorRng::seed_from(321);
    let weights = AttentionWeights::random(32, 4, &mut rng);
    let attn = ProtectedAttention::new(weights, ProtectionConfig::off());
    let x = rng.normal_matrix(20, 32, 0.5);
    let clean = run(&attn, &x, None);
    (x, attn, clean)
}

#[test]
fn q_fault_becomes_one_row_in_scores() {
    let (x, attn, clean) = setup();
    for kind in [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf] {
        let faulty = run(&attn, &x, Some((AttnOp::Q, kind, 5, 3)));
        let rep = classify(&clean.scores, &faulty.scores, 1e-3);
        assert!(
            matches!(rep.pattern, PatternClass::OneRow { row: 5 }),
            "{kind:?}: {rep:?}"
        );
    }
}

#[test]
fn k_fault_becomes_one_col_in_scores_then_2d_downstream() {
    let (x, attn, clean) = setup();
    let faulty = run(&attn, &x, Some((AttnOp::K, FaultKind::Inf, 7, 2)));
    let rep = classify(&clean.scores, &faulty.scores, 1e-3);
    assert!(
        matches!(rep.pattern, PatternClass::OneCol { col: 7 }),
        "{rep:?}"
    );
    // Softmax mixes the column into every row → 2D from AP onward.
    let rep_ap = classify(&clean.ap, &faulty.ap, 1e-3);
    assert_eq!(rep_ap.pattern, PatternClass::TwoD);
    let rep_o = classify(&clean.o, &faulty.o, 1e-3);
    assert_eq!(rep_o.pattern, PatternClass::TwoD);
}

#[test]
fn inf_turns_to_nan_through_softmax() {
    // Table 2's type transition: AS:1R-∞* → AP:1R-Θ.
    let (x, attn, clean) = setup();
    let faulty = run(&attn, &x, Some((AttnOp::Q, FaultKind::Inf, 4, 1)));
    let rep_as = classify(&clean.scores, &faulty.scores, 1e-3);
    assert!(
        rep_as.census.pos_inf + rep_as.census.neg_inf > 0,
        "{rep_as:?}"
    );
    let rep_ap = classify(&clean.ap, &faulty.ap, 1e-3);
    assert!(rep_ap.census.nan > 0, "{rep_ap:?}");
    assert_eq!(rep_ap.census.pos_inf + rep_ap.census.neg_inf, 0);
}

#[test]
fn near_inf_stays_finite_through_softmax() {
    // near-INF saturates softmax to a one-hot instead of NaN — the reason
    // near-INF faults in AS rarely break training (Table 4).
    let (x, attn, clean) = setup();
    let faulty = run(&attn, &x, Some((AttnOp::AS, FaultKind::NearInf, 3, 6)));
    assert!(faulty.ap.all_finite());
    let rep_ap = classify(&clean.ap, &faulty.ap, 1e-3);
    assert!(
        matches!(rep_ap.pattern, PatternClass::OneRow { row: 3 }),
        "{rep_ap:?}"
    );
    assert_eq!(rep_ap.census.extreme(), 0, "AP stays moderate: {rep_ap:?}");
}

#[test]
fn v_fault_becomes_one_col_in_context_layer() {
    let (x, attn, clean) = setup();
    let faulty = run(&attn, &x, Some((AttnOp::V, FaultKind::NaN, 6, 4)));
    let rep_cl = classify(&clean.cl, &faulty.cl, 1e-3);
    // Column within head 0's slice of CL.
    assert!(
        matches!(rep_cl.pattern, PatternClass::OneCol { col: 4 }),
        "{rep_cl:?}"
    );
}

#[test]
fn cl_fault_becomes_one_row_in_output() {
    let (x, attn, clean) = setup();
    let faulty = run(&attn, &x, Some((AttnOp::CL, FaultKind::Inf, 9, 2)));
    let rep_o = classify(&clean.o, &faulty.o, 1e-3);
    assert!(
        matches!(rep_o.pattern, PatternClass::OneRow { row: 9 }),
        "{rep_o:?}"
    );
}

#[test]
fn protection_confines_every_studied_pattern() {
    // With protection on, none of the Table 2 patterns survive to O.
    let mut rng = TensorRng::seed_from(77);
    let weights = AttentionWeights::random(32, 4, &mut rng);
    let protected = ProtectedAttention::new(weights, ProtectionConfig::full());
    let x = rng.normal_matrix(20, 32, 0.5);
    let mut quiet = AbftReport::default();
    let clean = protected.forward_simple(&x, &mut quiet);
    for op in AttnOp::STUDY {
        for kind in [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf] {
            let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
                if site.op == op && site.head.unwrap_or(1) == 1 {
                    let (r, c) = (3 % m.rows(), 2 % m.cols());
                    let old = m.get(r, c);
                    m.set(r, c, kind.apply(old));
                }
            };
            let mut report = AbftReport::default();
            let out = protected.forward(
                &x,
                ForwardOptions {
                    mask: None,
                    toggles: SectionToggles::all(),
                    hook: Some(&mut hook),
                },
                &mut report,
            );
            let rep = classify(&clean.output, &out.output, 1e-3);
            assert!(
                rep.is_clean(),
                "{op:?}/{kind:?} leaked {rep:?} into O ({report})"
            );
        }
    }
}
