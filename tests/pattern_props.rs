//! Property tests for the propagation-pattern classifier (paper §2.2,
//! Table 2): `shape_of` must be a pure function of the *set* of corrupted
//! positions (stable under any reordering), `Clean` must coincide exactly
//! with an empty position list, and the paper's glyph notation
//! (`1R-Θ`, `1C-∞*`, `2D-M`, …) is pinned so a formatting drift cannot
//! silently change the reproduced Table 2 cells.

use attn_fault::pattern::{classify, shape_of, PatternClass};
use attn_tensor::Matrix;
use proptest::prelude::*;

/// A small finite reference matrix with values far from the classifier's
/// relative tolerance.
fn base_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..6, 2usize..8).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(-40.0f32..40.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

/// Fisher–Yates driven by a splitmix-style generator, so the permutation
/// property needs no shuffle combinator from the (vendored, slim) proptest.
fn shuffled(mut v: Vec<(usize, usize)>, mut seed: u64) -> Vec<(usize, usize)> {
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The 0D/1R/1C/2D verdict may not depend on the order faults were
    /// discovered in — only on where they are.
    #[test]
    fn shape_classification_is_permutation_stable(
        original in prop::collection::vec((0usize..8, 0usize..8), 0..24),
        seed in 0u64..u64::MAX,
    ) {
        let permuted = shuffled(original.clone(), seed);
        prop_assert_eq!(shape_of(&original), shape_of(&permuted));
    }

    /// `Clean` ⇔ the classifier found no corrupted positions, and the
    /// report is internally consistent: the pattern is `shape_of` of its
    /// own position list and the census counts every position exactly once.
    #[test]
    fn clean_iff_positions_empty(
        m in base_matrix(),
        cell_mask in prop::collection::vec(0usize..2, 48),
    ) {
        let mut corrupted = m.clone();
        let mut planted = 0usize;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if cell_mask[r * m.cols() + c] == 1 {
                    corrupted[(r, c)] = f32::INFINITY;
                    planted += 1;
                }
            }
        }
        let rep = classify(&m, &corrupted, 1e-4);
        prop_assert_eq!(rep.is_clean(), rep.positions.is_empty());
        prop_assert_eq!(rep.is_clean(), planted == 0);
        prop_assert_eq!(rep.positions.len(), planted);
        prop_assert_eq!(rep.census.total(), planted);
        prop_assert_eq!(rep.pattern, shape_of(&rep.positions));
        if rep.is_clean() {
            prop_assert_eq!(rep.cell(), "-");
        }
    }

    /// Deviations at or below the relative tolerance never register as
    /// corruption, for any victim cell.
    #[test]
    fn sub_tolerance_noise_is_clean(
        m in base_matrix(),
        rf in 0.0f64..1.0,
        cf in 0.0f64..1.0,
    ) {
        let r = ((rf * m.rows() as f64) as usize).min(m.rows() - 1);
        let c = ((cf * m.cols() as f64) as usize).min(m.cols() - 1);
        let mut close = m.clone();
        let a = m[(r, c)];
        close[(r, c)] = a + 0.5 * 1e-4 * a.abs().max(1.0);
        prop_assert!(classify(&m, &close, 1e-4).is_clean());
    }

    /// Table 2 glyphs for whole-row corruption are pinned: a row of NaNs is
    /// `1R-Θ`, single-sign INF is `1R-∞`, mixed-sign INF is `1R-∞*`,
    /// near-INF magnitudes are `1R-N`, and moderate noise is `1R-ε`.
    #[test]
    fn table2_row_glyphs_are_pinned(
        m in base_matrix(),
        rf in 0.0f64..1.0,
        class in 0usize..5,
    ) {
        let r = ((rf * m.rows() as f64) as usize).min(m.rows() - 1);
        let mut corrupted = m.clone();
        for c in 0..m.cols() {
            corrupted[(r, c)] = match class {
                0 => f32::NAN,
                1 => f32::INFINITY,
                // Mixed signs: guaranteed ≥1 of each because cols ≥ 2.
                2 if c % 2 == 0 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 5e11,
                _ => m[(r, c)] + 10.0,
            };
        }
        let rep = classify(&m, &corrupted, 1e-4);
        prop_assert_eq!(rep.pattern, PatternClass::OneRow { row: r });
        let expected = match class {
            0 => "1R-Θ",
            1 => "1R-∞",
            2 => "1R-∞*",
            3 => "1R-N",
            _ => "1R-ε",
        };
        prop_assert_eq!(rep.cell(), expected);
    }

    /// Column and 2D glyphs are pinned too: a full column of NaNs is
    /// `1C-Θ`, one lone INF is `0D-∞`, and an off-diagonal mixture of NaN
    /// and INF is `2D-M`.
    #[test]
    fn table2_column_and_2d_glyphs_are_pinned(
        m in base_matrix(),
        cf in 0.0f64..1.0,
    ) {
        let c = ((cf * m.cols() as f64) as usize).min(m.cols() - 1);

        let mut col_nan = m.clone();
        for r in 0..m.rows() {
            col_nan[(r, c)] = f32::NAN;
        }
        let rep = classify(&m, &col_nan, 1e-4);
        prop_assert_eq!(rep.pattern, PatternClass::OneCol { col: c });
        prop_assert_eq!(rep.cell(), "1C-Θ");

        let mut lone = m.clone();
        lone[(0, c)] = f32::INFINITY;
        let rep = classify(&m, &lone, 1e-4);
        prop_assert_eq!(rep.pattern, PatternClass::ZeroD { row: 0, col: c });
        prop_assert_eq!(rep.cell(), "0D-∞");

        // Two cells sharing neither row nor column (rows ≥ 2, cols ≥ 2).
        let c2 = (c + 1) % m.cols();
        let mut scatter = m.clone();
        scatter[(0, c)] = f32::NAN;
        scatter[(1, c2)] = f32::NEG_INFINITY;
        let rep = classify(&m, &scatter, 1e-4);
        prop_assert_eq!(rep.pattern, PatternClass::TwoD);
        prop_assert_eq!(rep.cell(), "2D-M");
    }
}

/// The bare shape glyphs of Table 2's row labels never drift.
#[test]
fn shape_glyphs_are_pinned() {
    assert_eq!(PatternClass::Clean.glyph(), "-");
    assert_eq!(PatternClass::ZeroD { row: 0, col: 0 }.glyph(), "0D");
    assert_eq!(PatternClass::OneRow { row: 0 }.glyph(), "1R");
    assert_eq!(PatternClass::OneCol { col: 0 }.glyph(), "1C");
    assert_eq!(PatternClass::TwoD.glyph(), "2D");
}
