//! Recovery-path equivalence (the semantics behind Fig 11): after one
//! faulty step, ATTNChecker's in-place correction and the checkpoint/
//! restore baseline must land the model in the same post-step state — they
//! are alternative implementations of "the step happened as if fault-free".

use attn_ckpt::{restore_model, snapshot_model, CheckpointManager};
use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::{HasParams, SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

fn build(protection: attnchecker::config::ProtectionConfig, seed: u64) -> (Trainer, ModelConfig) {
    let mut config = ModelConfig::roberta();
    config.hidden = 32;
    config.heads = 2;
    config.layers = 2;
    let mut rng = TensorRng::seed_from(seed);
    (
        Trainer::new(
            TransformerModel::new(config.clone(), protection, &mut rng),
            1e-3,
        ),
        config,
    )
}

fn params_of(trainer: &mut Trainer) -> Vec<attn_tensor::Matrix> {
    let mut v = Vec::new();
    trainer.model.visit_params(&mut |p| v.push(p.value.clone()));
    v
}

#[test]
fn abft_correction_and_cr_replay_reach_the_same_state() {
    let (mut abft_trainer, config) = build(ProtectionConfig::full(), 9);
    let (mut cr_trainer, _) = build(ProtectionConfig::off(), 9);
    let ds = SyntheticMrpc::generate(8, config.vocab, 16, 4);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();

    // Path A: protected step with a fault — corrected inline.
    let spec = InjectionSpec {
        layer: 1,
        op: AttnOp::K,
        head: 1,
        row: 6,
        col: 9,
        kind: FaultKind::Inf,
    };
    let out = abft_trainer.train_step_injected(&batch, Some((2, spec)));
    assert!(!out.non_trainable);
    assert!(out.report.correction_count() > 0);

    // Path B: CR — pre-step checkpoint, (the faulty step is discarded),
    // restore, replay cleanly.
    let snap = snapshot_model(&mut cr_trainer.model, cr_trainer.optim.t);
    let broken = cr_trainer.train_step_injected(&batch, Some((2, spec)));
    assert!(
        broken.non_trainable,
        "unprotected fault must break the step"
    );
    let t = restore_model(&mut cr_trainer.model, &snap).expect("restore");
    cr_trainer.optim.t = t;
    let replay = cr_trainer.train_step(&batch);
    assert!(!replay.non_trainable);

    // Both paths performed "one clean step" — states must agree.
    assert!((out.loss - replay.loss).abs() < 5e-3);
    for (a, b) in params_of(&mut abft_trainer)
        .iter()
        .zip(&params_of(&mut cr_trainer))
    {
        assert!(a.approx_eq(b, 1e-2, 1e-3), "post-recovery states diverged");
    }
}

#[test]
fn checkpoint_manager_roundtrip_through_disk_matches_memory_snapshot() {
    let (mut trainer, config) = build(ProtectionConfig::off(), 21);
    let ds = SyntheticMrpc::generate(8, config.vocab, 16, 6);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();
    let _ = trainer.train_step(&batch);

    let mem = snapshot_model(&mut trainer.model, trainer.optim.t);

    let dir = std::env::temp_dir().join(format!("attnchk-it-{}", std::process::id()));
    let mut mgr = CheckpointManager::new(&dir).expect("dir");
    let (_, bytes, _) = mgr.save(&mut trainer).expect("save");
    assert_eq!(bytes, mem.len(), "disk and memory snapshots must agree");

    // Train further then restore: state returns to the snapshot.
    let _ = trainer.train_step(&batch);
    let before_restore = params_of(&mut trainer);
    mgr.load_last(&mut trainer).expect("load");
    let after_restore = params_of(&mut trainer);
    let mut reference = trainer.model.clone();
    let t = restore_model(&mut reference, &mem).expect("mem restore");
    assert_eq!(t, trainer.optim.t);
    assert_ne!(before_restore, after_restore, "restore must change state");
    let mut ref_params = Vec::new();
    reference.visit_params(&mut |p| ref_params.push(p.value.clone()));
    assert_eq!(after_restore, ref_params);
    let _ = std::fs::remove_dir_all(&dir);
}
