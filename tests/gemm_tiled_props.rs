//! Property tests for the packed register-tiled GEMM kernels: numerical
//! agreement with the naive reference, bit-determinism at any rayon worker
//! count, IEEE-754 propagation faithfulness (no zero-skipping shortcuts),
//! the fused-encoding ≡ encode-then-GEMM bit identity, and the
//! accumulation-order contract that exact post-correction replay
//! (`attnchecker::section::replay_nn`) depends on.

use attn_tensor::gemm::{
    self, gemm_encode_cols_into, gemm_encode_rows_into, matmul, matmul_naive, matmul_nt, matmul_tn,
    KC, MC,
};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::Strategy as AbftStrategy;
use attnchecker::section::replay_nn;
use proptest::prelude::*;

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Run `f` inside a rayon pool of `threads` workers.
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("test pool")
        .install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) The tiled kernel agrees with the triple-loop reference within
    /// accumulation round-off, across sizes straddling MR/NR/MC/NC edges.
    #[test]
    fn tiled_matches_naive(a in matrix(1..40, 1..40), n in 1usize..40, seed in 0u64..1000) {
        let mut rng = TensorRng::seed_from(seed);
        let b = rng.uniform_matrix(a.cols(), n, -2.0, 2.0);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        let scale = a.cols() as f32;
        prop_assert!(c.approx_eq(&r, 1e-4, 1e-4 * scale.max(1.0)));
    }

    /// The NT and TN layouts match their explicit-transpose compositions —
    /// including inner dimensions that span several KC blocks (the shape
    /// class the old NT kernel streamed unblocked).
    #[test]
    fn nt_tn_match_transposed_compositions(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..300,
        seed in 0u64..1000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let bt = rng.uniform_matrix(n, k, -1.0, 1.0);
        let c = matmul_nt(&a, &bt);
        let r = matmul_naive(&a, &bt.transpose());
        prop_assert!(c.approx_eq(&r, 1e-4, 1e-4 * (k as f32)));

        let at = rng.uniform_matrix(k, m, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let c2 = matmul_tn(&at, &b);
        let r2 = matmul_naive(&at.transpose(), &b);
        prop_assert!(c2.approx_eq(&r2, 1e-4, 1e-4 * (k as f32)));
    }

    /// (b) Small-size determinism: worker count can never change bits
    /// (below the parallel threshold the grid is sequential, so this is
    /// the trivial half of the property — the load-bearing half is the
    /// dedicated large-matrix test below).
    #[test]
    fn pool_size_is_invisible_small(a in matrix(1..20, 1..20), n in 1usize..20) {
        let b = Matrix::from_fn(a.cols(), n, |r, c| ((r * 5 + c) % 9) as f32 / 3.0 - 1.0);
        let c1 = with_pool(1, || matmul(&a, &b));
        let c3 = with_pool(3, || matmul(&a, &b));
        prop_assert!(bits_equal(&c1, &c3));
    }

    /// (c) IEEE propagation faithfulness: a NaN anywhere in A poisons
    /// exactly its output row — and a *zero* in A multiplied by a NaN in B
    /// still produces NaN (`0 × NaN = NaN`), which a sparsity shortcut
    /// would silently skip.
    #[test]
    fn nan_propagation_is_faithful(
        m in 1usize..20,
        k in 1usize..150,
        n in 1usize..20,
        rf in 0.0f64..1.0,
        kf in 0.0f64..1.0,
    ) {
        let r0 = ((rf * m as f64) as usize).min(m - 1);
        let k0 = ((kf * k as f64) as usize).min(k - 1);
        // NaN in A.
        let mut a = Matrix::full(m, k, 1.0);
        a[(r0, k0)] = f32::NAN;
        let b = Matrix::full(k, n, 1.0);
        let c = matmul(&a, &b);
        for j in 0..n {
            prop_assert!(c[(r0, j)].is_nan(), "row {r0} col {j} escaped NaN");
        }
        for r in 0..m {
            if r != r0 {
                prop_assert!(c.row(r).iter().all(|x| x.is_finite()));
            }
        }
        // Zero in A against NaN in B: no zero-skipping allowed.
        let mut az = Matrix::full(m, k, 1.0);
        az[(r0, k0)] = 0.0;
        let mut bz = Matrix::full(k, n, 1.0);
        bz[(k0, 0)] = f32::NAN;
        let cz = matmul(&az, &bz);
        prop_assert!(cz[(r0, 0)].is_nan(), "0 * NaN must stay NaN");
    }

    /// INF propagates with its sign through every layout.
    #[test]
    fn inf_propagation_keeps_sign(
        m in 1usize..10,
        k in 1usize..60,
        n in 1usize..10,
        negative in 0usize..2,
    ) {
        let inf = if negative == 1 { f32::NEG_INFINITY } else { f32::INFINITY };
        let mut a = Matrix::full(m, k, 1.0);
        a[(0, 0)] = inf;
        let b = Matrix::full(k, n, 1.0);
        let c = matmul(&a, &b);
        for j in 0..n {
            prop_assert_eq!(c[(0, j)], inf);
        }
    }

    /// Fused-encoding output is bit-identical to encode-then-GEMM, across
    /// sizes spanning the MC/KC block edges and both checksum sides.
    #[test]
    fn fused_encoding_equals_encode_then_gemm(
        m in 1usize..150,
        k in 1usize..40,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(k, n, -2.0, 2.0);

        let mut fused_c = Matrix::zeros(m + 2, n);
        gemm_encode_cols_into(a.view(), b.view(), fused_c.view_mut());
        let staged_c = CheckedMatrix::encode_cols(&a, AbftStrategy::Fused)
            .matmul(&CheckedMatrix::from_plain(&b));
        prop_assert!(bits_equal(&fused_c, staged_c.buf()), "cols side");

        let mut fused_r = Matrix::zeros(m, n + 2);
        gemm_encode_rows_into(a.view(), b.view(), fused_r.view_mut());
        let staged_r = CheckedMatrix::from_plain(&a)
            .matmul(&CheckedMatrix::encode_rows(&b, AbftStrategy::Fused));
        prop_assert!(bits_equal(&fused_r, staged_r.buf()), "rows side");
    }

    /// The exact-replay contract: `replay_nn` reproduces any product
    /// element bit-for-bit, for inner dimensions crossing KC blocks.
    #[test]
    fn replay_reproduces_kernel_bits(
        m in 1usize..8,
        k in 1usize..300,
        n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let c = matmul(&a, &b);
        for r in 0..m {
            for j in 0..n {
                let replayed = replay_nn(a.row(r), |kk| b[(kk, j)]);
                prop_assert_eq!(replayed.to_bits(), c[(r, j)].to_bits(), "({}, {})", r, j);
            }
        }
    }
}

/// (b), load-bearing half: a GEMM large enough to cross
/// [`gemm::PAR_FLOP_THRESHOLD`] runs on the parallel 2D tile grid, and its
/// every output bit is identical at 1, 3, and 8 workers (the tile
/// partition is deterministic and tiles never interact). Covers all three
/// layouts plus the fused encode.
#[test]
fn parallel_grid_is_bit_deterministic_across_worker_counts() {
    assert!(gemm::exceeds_par_threshold(272, 252, 256));
    let mut rng = TensorRng::seed_from(99);
    let a = rng.uniform_matrix(272, 256, -1.0, 1.0);
    let b = rng.uniform_matrix(256, 252, -1.0, 1.0);
    let bt = b.transpose();
    let at = a.transpose();

    let reference = with_pool(1, || matmul(&a, &b));
    let reference_enc = with_pool(1, || {
        let mut c = Matrix::zeros(274, 252);
        gemm_encode_cols_into(a.view(), b.view(), c.view_mut());
        c
    });
    for threads in [3usize, 8] {
        let c = with_pool(threads, || matmul(&a, &b));
        assert!(
            bits_equal(&c, &reference),
            "matmul bits differ at {threads} workers"
        );
        let cnt = with_pool(threads, || matmul_nt(&a, &bt));
        assert!(
            bits_equal(&cnt, &reference),
            "matmul_nt bits differ at {threads} workers"
        );
        let ctn = with_pool(threads, || matmul_tn(&at, &b));
        assert!(
            bits_equal(&ctn, &reference),
            "matmul_tn bits differ at {threads} workers"
        );
        let enc = with_pool(threads, || {
            let mut c = Matrix::zeros(274, 252);
            gemm_encode_cols_into(a.view(), b.view(), c.view_mut());
            c
        });
        assert!(
            bits_equal(&enc, &reference_enc),
            "fused encode bits differ at {threads} workers"
        );
    }
}

/// The NN/NT/TN layouts share one accumulation contract: for identical
/// logical operands they produce identical bits.
#[test]
fn layouts_share_one_contract() {
    let mut rng = TensorRng::seed_from(7);
    let a = rng.uniform_matrix(9, 2 * KC + 31, -1.0, 1.0);
    let b = rng.uniform_matrix(2 * KC + 31, 11, -1.0, 1.0);
    let nn = matmul(&a, &b);
    let nt = matmul_nt(&a, &b.transpose());
    let tn = matmul_tn(&a.transpose(), &b);
    assert!(bits_equal(&nn, &nt), "NT disagrees with NN bitwise");
    assert!(bits_equal(&nn, &tn), "TN disagrees with NN bitwise");
}

/// The standalone encoders mirror the in-packing block contract even when
/// the operand spans several MC row-blocks — the hinge of the
/// fused-vs-standalone bit identity.
#[test]
fn standalone_encoder_matches_fused_projection_across_blocks() {
    use attnchecker::checksum::col_checksums;
    let mut rng = TensorRng::seed_from(13);
    let a = rng.uniform_matrix(3 * MC + 17, 9, -1.0, 1.0);
    let id = Matrix::identity(9);
    // Identity right operand: the fused border *is* CS_A itself.
    let mut c = Matrix::zeros(a.rows() + 2, 9);
    gemm_encode_cols_into(a.view(), id.view(), c.view_mut());
    let cs = col_checksums(&a);
    for j in 0..9 {
        // The border went through the streaming product against I, which
        // multiplies each projection by exactly 1.0 and sums one term per
        // KC block — equal to the projection value itself only up to the
        // block re-summation, so compare the projections numerically.
        assert!(
            (c[(a.rows(), j)] - cs[(0, j)]).abs() <= 1e-3 * (1.0 + cs[(0, j)].abs()),
            "projection {j} drifted"
        );
    }
}
