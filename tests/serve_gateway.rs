//! Cross-crate contracts of the serving gateway, pinned through the
//! workspace façade: a fixed arrival trace is bit-identical at any
//! worker count and admission shape, and the paged KV cache's
//! verify-on-move detects at-rest damage in evicted (parked) blocks.

use attnchecker_repro::abft::config::ProtectionConfig;
use attnchecker_repro::abft::report::AbftReport;
use attnchecker_repro::infer::Sampling;
use attnchecker_repro::model::model::{ModelConfig, TransformerModel};
use attnchecker_repro::serve::{
    FinishReason, Gateway, GatewayConfig, Request, TraceEvent, TraceOutcome,
};
use attnchecker_repro::tensor::rng::TensorRng;

fn lm_model() -> TransformerModel {
    let mut cfg = ModelConfig::gpt2();
    cfg.hidden = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.vocab = 48;
    cfg.num_classes = 48;
    cfg.max_seq = 32;
    let mut rng = TensorRng::seed_from(2025);
    TransformerModel::new(cfg, ProtectionConfig::full(), &mut rng)
}

fn trace() -> Vec<TraceEvent> {
    [
        (0u64, vec![3usize, 11, 7, 29, 5], 5usize, 1u64),
        (0, vec![40, 4, 9, 13, 2, 8], 4, 2),
        (2, vec![17, 1, 2, 3, 4, 5, 6], 6, 3),
        (5, vec![9, 9, 9, 9], 5, 4),
        (6, vec![5, 23, 2, 30, 31, 7], 4, 5),
    ]
    .into_iter()
    .map(|(at_tick, prompt, max_new, seed)| TraceEvent {
        at_tick,
        request: Request {
            prompt,
            max_new,
            seed,
        },
    })
    .collect()
}

fn run(workers: usize, max_live: usize, kv_row_budget: usize) -> TraceOutcome {
    let mut gw = Gateway::new(
        lm_model(),
        GatewayConfig {
            max_live,
            kv_row_budget,
            prefill_chunk: 2,
            sampling: Sampling::Temperature(0.9),
            workers,
            ..GatewayConfig::default()
        },
    );
    gw.run_trace(&trace())
}

#[test]
fn gateway_trace_is_bit_identical_across_workers_and_admission_shapes() {
    let base = run(1, 3, usize::MAX);
    assert_eq!(base.completions.len(), 5);
    assert!(base.rejected.is_empty());
    assert!(base
        .completions
        .iter()
        .all(|c| c.reason == FinishReason::TokenBudget && c.report.is_quiet()));

    // Worker count: the full outcome (tokens, reasons, tick timings) is
    // bit-identical.
    for workers in [2, 4] {
        assert_eq!(run(workers, 3, usize::MAX), base, "workers={workers}");
    }

    // Admission interleaving (live-set size, KV budget parking): per-
    // request token streams survive unchanged; only timings may shift.
    let tokens_of = |out: &TraceOutcome| {
        let mut v: Vec<_> = out
            .completions
            .iter()
            .map(|c| (c.id, c.tokens.clone()))
            .collect();
        v.sort();
        v
    };
    for (max_live, budget) in [(1, usize::MAX), (2, 20), (3, 14)] {
        assert_eq!(
            tokens_of(&run(1, max_live, budget)),
            tokens_of(&base),
            "max_live={max_live} budget={budget} perturbed a token stream"
        );
    }
}

#[test]
fn at_rest_flip_in_evicted_kv_block_is_detected_and_corrected() {
    // The verify-on-move contract behind the gateway's budget parking,
    // driven through the model layer: park a mid-decode session, corrupt
    // one element of a cold K block, and unpark — the per-block checksum
    // tails must flag and repair it.
    let m = lm_model();
    let mut state = m.new_decode_state();
    let mut report = AbftReport::default();
    let toggles = attnchecker_repro::abft::attention::SectionToggles::all();
    let _ = m.prefill(&[3, 11, 7, 29], &mut state, toggles, &mut report);
    for t in [5usize, 2, 40, 13] {
        let _ = m.decode_step(t, &mut state, toggles, None, &mut report);
    }
    assert!(report.is_quiet());

    m.park_state(&mut state, &mut report);
    assert!(state.is_parked());
    state.cold_layers_mut()[1].k_data_mut(0)[3 * 16 + 5] = f32::NAN;
    m.unpark_state(&mut state, &mut report);

    assert!(report.detections >= 1, "flip must be detected: {report:?}");
    assert!(report.correction_count() >= 1, "flip must be corrected");
    assert_eq!(report.unrecovered, 0, "single flip must not be fatal");
    // The repaired state keeps decoding.
    let logits = m.decode_step(1, &mut state, toggles, None, &mut report);
    assert!(logits.all_finite());
}
